#include "fault/injector.hh"

#include <algorithm>
#include <sstream>

#include "base/logging.hh"
#include "machine/machine.hh"
#include "os/scheduler.hh"
#include "sim/event.hh"
#include "sim/simulation.hh"

namespace jscale::fault {

namespace {

std::string
joinIds(const std::vector<std::uint32_t> &ids)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < ids.size(); ++i) {
        if (i > 0)
            os << ',';
        os << ids[i];
    }
    return os.str();
}

} // namespace

FaultInjector::FaultInjector(sim::Simulation &sim, machine::Machine &mach,
                             jvm::JavaVm &vm, FaultPlan plan)
    : sim_(sim), mach_(mach), vm_(vm), plan_(std::move(plan))
{}

FaultInjector::~FaultInjector()
{
    for (auto &ev : events_)
        sim_.queue().deschedule(ev.get());
}

void
FaultInjector::schedule(Ticks when, std::function<void()> fn,
                        const char *what)
{
    events_.push_back(
        std::make_unique<sim::CallbackEvent>(std::move(fn), what));
    sim_.schedule(events_.back().get(), when);
}

void
FaultInjector::emit(const char *kind, bool recovery,
                    const std::string &detail, Ticks now)
{
    if (recovery)
        ++summary_.recoveries;
    else
        ++summary_.injections;
    if (probe_)
        probe_(kind, recovery, detail, now);
}

std::vector<std::uint32_t>
FaultInjector::pickCores(std::uint32_t want) const
{
    // Highest-numbered online cores first: with the paper's compact
    // socket fill these are the last-enabled ones, so low intensities
    // perturb the "extra" capacity before the primary socket.
    std::vector<std::uint32_t> out;
    const auto total = static_cast<std::uint32_t>(mach_.cores().size());
    for (std::uint32_t id = total; id > 0 && out.size() < want; --id) {
        if (mach_.core(id - 1).enabled())
            out.push_back(id - 1);
    }
    return out;
}

void
FaultInjector::arm(Ticks start)
{
    for (const FaultSpec &f : plan_.faults) {
        const Ticks at = start + f.at;
        switch (f.kind) {
          case FaultKind::CoreOffline: {
            auto state = std::make_shared<CoreFault>();
            schedule(at, [this, f, state] { injectCoreOffline(f, state); },
                     "fault-coreoff");
            if (f.duration > 0) {
                schedule(at + f.duration,
                         [this, state] { recoverCoreOffline(state); },
                         "fault-coreoff-recover");
            }
            break;
          }
          case FaultKind::CoreSlowdown: {
            auto state = std::make_shared<CoreFault>();
            schedule(at, [this, f, state] { injectSlowdown(f, state); },
                     "fault-slow");
            if (f.duration > 0) {
                schedule(at + f.duration,
                         [this, state] { recoverSlowdown(state); },
                         "fault-slow-recover");
            }
            break;
          }
          case FaultKind::PreemptLockHolders:
            for (std::uint32_t i = 0; i < f.count; ++i) {
                schedule(at + static_cast<Ticks>(i) * f.period,
                         [this, f] { injectPreempt(f); }, "fault-preempt");
            }
            break;
          case FaultKind::MutatorKill:
            schedule(at, [this, f] { injectKill(f); }, "fault-kill");
            break;
          case FaultKind::MutatorStall:
            schedule(at, [this, f] { injectStall(f); }, "fault-stall");
            break;
          case FaultKind::HeapPressure:
            schedule(at, [this, f] { injectHeapPressure(f); },
                     "fault-heap");
            if (f.duration > 0) {
                const Bytes bytes = f.bytes;
                schedule(at + f.duration,
                         [this, bytes] { recoverHeapPressure(bytes); },
                         "fault-heap-recover");
            }
            break;
          case FaultKind::GcWorkerLoss: {
            auto saved = std::make_shared<std::uint32_t>(0);
            schedule(at, [this, f, saved] { injectGcWorkerLoss(f, saved); },
                     "fault-gcworkers");
            if (f.duration > 0) {
                schedule(at + f.duration,
                         [this, saved] { recoverGcWorkerLoss(saved); },
                         "fault-gcworkers-recover");
            }
            break;
          }
        }
    }
}

void
FaultInjector::injectCoreOffline(const FaultSpec &f,
                                 const std::shared_ptr<CoreFault> &state)
{
    os::Scheduler &sched = vm_.scheduler();
    for (const std::uint32_t id : pickCores(f.count)) {
        if (sched.setCoreOnline(id, false))
            state->cores.push_back(id);
    }
    summary_.cores_offlined += state->cores.size();
    emit("coreoff", false, "cores " + joinIds(state->cores) + " offline",
         sim_.now());
}

void
FaultInjector::recoverCoreOffline(const std::shared_ptr<CoreFault> &state)
{
    os::Scheduler &sched = vm_.scheduler();
    for (const std::uint32_t id : state->cores) {
        if (sched.setCoreOnline(id, true))
            ++summary_.cores_onlined;
    }
    emit("coreoff", true, "cores " + joinIds(state->cores) + " online",
         sim_.now());
    state->cores.clear();
}

void
FaultInjector::injectSlowdown(const FaultSpec &f,
                              const std::shared_ptr<CoreFault> &state)
{
    os::Scheduler &sched = vm_.scheduler();
    state->cores = pickCores(f.count);
    for (const std::uint32_t id : state->cores)
        sched.setCoreSpeed(id, f.factor);
    summary_.slowdowns += state->cores.size();
    std::ostringstream os;
    os << "cores " << joinIds(state->cores) << " at x" << f.factor;
    emit("slow", false, os.str(), sim_.now());
}

void
FaultInjector::recoverSlowdown(const std::shared_ptr<CoreFault> &state)
{
    os::Scheduler &sched = vm_.scheduler();
    for (const std::uint32_t id : state->cores)
        sched.setCoreSpeed(id, 1.0);
    emit("slow", true, "cores " + joinIds(state->cores) + " at full speed",
         sim_.now());
    state->cores.clear();
}

void
FaultInjector::injectPreempt(const FaultSpec &f)
{
    const std::uint32_t hit =
        vm_.scheduler().preemptLockHolders(f.duration);
    ++summary_.preempt_bursts;
    summary_.lock_holders_preempted += hit;
    emit("preempt", false,
         std::to_string(hit) + " lock holder(s) preempted for " +
             formatTicks(f.duration),
         sim_.now());
}

void
FaultInjector::injectKill(const FaultSpec &f)
{
    const Ticks now = sim_.now();
    std::vector<std::uint32_t> killed;
    for (std::uint32_t idx = vm_.mutatorCount();
         idx > 0 && killed.size() < f.count; --idx) {
        if (vm_.killMutator(idx - 1, now))
            killed.push_back(idx - 1);
    }
    summary_.mutators_killed += killed.size();
    emit("kill", false, "mutators " + joinIds(killed) + " killed", now);
}

void
FaultInjector::injectStall(const FaultSpec &f)
{
    const Ticks now = sim_.now();
    const Ticks until = now + f.duration;
    std::vector<std::uint32_t> stalled;
    for (std::uint32_t idx = vm_.mutatorCount();
         idx > 0 && stalled.size() < f.count; --idx) {
        if (vm_.stallMutator(idx - 1, until))
            stalled.push_back(idx - 1);
    }
    summary_.mutators_stalled += stalled.size();
    emit("stall", false,
         "mutators " + joinIds(stalled) + " stalled until " +
             formatTicks(until),
         now);
}

void
FaultInjector::injectHeapPressure(const FaultSpec &f)
{
    pressure_ += f.bytes;
    vm_.heap().setExternalPressure(pressure_);
    ++summary_.heap_spikes;
    emit("heap", false, formatBytes(pressure_) + " external pressure",
         sim_.now());
}

void
FaultInjector::recoverHeapPressure(Bytes bytes)
{
    pressure_ = pressure_ > bytes ? pressure_ - bytes : 0;
    vm_.heap().setExternalPressure(pressure_);
    emit("heap", true, formatBytes(pressure_) + " external pressure",
         sim_.now());
}

void
FaultInjector::injectGcWorkerLoss(const FaultSpec &f,
                                  const std::shared_ptr<std::uint32_t> &saved)
{
    const std::uint32_t current = vm_.activeGcWorkers();
    *saved = current;
    const std::uint32_t remaining =
        current > f.count ? current - f.count : 1;
    vm_.setGcWorkers(remaining);
    ++summary_.gc_worker_losses;
    emit("gcworkers", false,
         "GC workers " + std::to_string(current) + " -> " +
             std::to_string(remaining),
         sim_.now());
}

void
FaultInjector::recoverGcWorkerLoss(
    const std::shared_ptr<std::uint32_t> &saved)
{
    if (*saved == 0)
        return; // recovery fired before injection (degenerate plan)
    vm_.setGcWorkers(*saved);
    emit("gcworkers", true,
         "GC workers restored to " + std::to_string(*saved), sim_.now());
}

} // namespace jscale::fault
