/**
 * @file
 * Simulated manycore NUMA machine.
 *
 * Models the experimental platform of the paper: a multi-socket machine
 * (default preset: four AMD Opteron 6168 sockets, 12 cores each, 64 GB
 * RAM) where a configurable subset of cores is enabled per run. The
 * model carries what the study depends on: core counts, socket topology,
 * per-core frequency, and a first-order NUMA cost factor applied to
 * cross-node memory traffic (used by the GC copy-cost model).
 */

#ifndef JSCALE_MACHINE_MACHINE_HH
#define JSCALE_MACHINE_MACHINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/units.hh"

namespace jscale::machine {

/** Index of a physical core. */
using CoreId = std::uint32_t;

/** Index of a socket / NUMA memory node. */
using NodeId = std::uint32_t;

/** Static description of one machine configuration. */
struct MachineConfig
{
    std::string name = "generic";
    std::uint32_t sockets = 4;
    std::uint32_t cores_per_socket = 12;
    /** Core clock in GHz; the AMD 6168 runs at 1.9 GHz. */
    double freq_ghz = 1.9;
    /** Installed RAM per NUMA node. */
    Bytes mem_per_node = 16ULL * units::GiB;
    /** Multiplier on memory cost for remote-node accesses. */
    double numa_remote_factor = 1.6;
    /** Local-node memory streaming bandwidth, bytes per tick (ns). */
    double mem_bandwidth_bytes_per_ns = 8.0;
    /** Direct cost of a context switch on a core. */
    Ticks context_switch_cost = 1500 * units::NS;
    /** Extra cost when a thread migrates across sockets (cache refill). */
    Ticks migration_cost = 12 * units::US;

    /** Total physical cores. */
    std::uint32_t totalCores() const { return sockets * cores_per_socket; }
};

/** One processing core: identity, socket, and cycle/tick conversion. */
class Core
{
  public:
    Core(CoreId id, NodeId socket, double freq_ghz)
        : id_(id), socket_(socket), freq_ghz_(freq_ghz)
    {}

    CoreId id() const { return id_; }
    NodeId socket() const { return socket_; }
    double freqGhz() const { return freq_ghz_; }

    /** Convert a cycle count to simulated time on this core. */
    Ticks
    cyclesToTicks(Cycles c) const
    {
        return static_cast<Ticks>(static_cast<double>(c) / freq_ghz_);
    }

    /** Whether this core participates in the current experiment. */
    bool enabled() const { return enabled_; }

    /** Enable or disable the core (experiment setup only). */
    void setEnabled(bool e) { enabled_ = e; }

    /**
     * Current speed factor in (0, 1]: 1.0 is nominal frequency, lower
     * values model transient throttling (fault injection). Affects how
     * the scheduler stretches planned bursts, not cyclesToTicks.
     */
    double speedFactor() const { return speed_factor_; }
    void setSpeedFactor(double f) { speed_factor_ = f; }

  private:
    CoreId id_;
    NodeId socket_;
    double freq_ghz_;
    bool enabled_ = false;
    double speed_factor_ = 1.0;
};

/**
 * The machine: topology, enabled-core selection and the memory cost
 * model. Enabling follows the paper's methodology — the experiment
 * enables exactly as many cores as application threads, filling sockets
 * compactly (socket 0 first).
 */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config);

    /** Preset matching the paper's testbed: 4 x AMD 6168 (48 cores). */
    static MachineConfig amd6168_4p48c();

    /** Small preset for fast unit tests: 2 sockets x 4 cores. */
    static MachineConfig testMachine_2p8c();

    const MachineConfig &config() const { return config_; }

    /** All physical cores. */
    const std::vector<Core> &cores() const { return cores_; }

    /** Mutable core access. */
    Core &core(CoreId id);
    const Core &core(CoreId id) const;

    /** Socket (== NUMA node) owning a core. */
    NodeId socketOf(CoreId id) const { return core(id).socket(); }

    /** Core-enabling placement policies. */
    enum class EnablePolicy
    {
        /** Fill socket 0 first, then socket 1, ... (paper default). */
        Compact,
        /** Round-robin across sockets (OS-scheduler-like spread). */
        Scatter,
    };

    /**
     * Enable @p n cores under @p policy and disable the rest. @p n must
     * not exceed the physical core count.
     */
    void enableCores(std::uint32_t n,
                     EnablePolicy policy = EnablePolicy::Compact);

    /**
     * Take one core offline or bring it back online at runtime (fault
     * injection). Unlike enableCores this flips a single core and keeps
     * the enabled count consistent; no-op if already in that state.
     * Returns false when the request would offline the last online core.
     */
    bool setCoreOnline(CoreId id, bool online);

    /** Number of currently enabled cores. */
    std::uint32_t enabledCores() const { return enabled_count_; }

    /** Ids of the enabled cores, ascending. */
    std::vector<CoreId> enabledCoreIds() const;

    /** Number of distinct sockets with at least one enabled core. */
    std::uint32_t enabledSockets() const;

    /**
     * Cost in ticks for a core on @p from_node to stream @p bytes from
     * memory on @p mem_node (NUMA factor applied when the nodes differ).
     */
    Ticks memCopyCost(NodeId from_node, NodeId mem_node, Bytes bytes) const;

    /** Total installed memory across nodes. */
    Bytes totalMemory() const;

  private:
    MachineConfig config_;
    std::vector<Core> cores_;
    std::uint32_t enabled_count_ = 0;
};

} // namespace jscale::machine

#endif // JSCALE_MACHINE_MACHINE_HH
