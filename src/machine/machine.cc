#include "machine/machine.hh"

#include <cmath>
#include <set>

#include "base/logging.hh"

namespace jscale::machine {

Machine::Machine(const MachineConfig &config)
    : config_(config)
{
    jscale_assert(config.sockets > 0 && config.cores_per_socket > 0,
                  "machine requires at least one core");
    cores_.reserve(config.totalCores());
    for (std::uint32_t s = 0; s < config.sockets; ++s) {
        for (std::uint32_t c = 0; c < config.cores_per_socket; ++c) {
            cores_.emplace_back(
                static_cast<CoreId>(cores_.size()), s, config.freq_ghz);
        }
    }
}

MachineConfig
Machine::amd6168_4p48c()
{
    MachineConfig cfg;
    cfg.name = "amd6168-4p48c";
    cfg.sockets = 4;
    cfg.cores_per_socket = 12;
    cfg.freq_ghz = 1.9;
    cfg.mem_per_node = 16ULL * units::GiB;
    cfg.numa_remote_factor = 1.6;
    return cfg;
}

MachineConfig
Machine::testMachine_2p8c()
{
    MachineConfig cfg;
    cfg.name = "test-2p8c";
    cfg.sockets = 2;
    cfg.cores_per_socket = 4;
    cfg.freq_ghz = 2.0;
    cfg.mem_per_node = 1ULL * units::GiB;
    return cfg;
}

Core &
Machine::core(CoreId id)
{
    jscale_assert(id < cores_.size(), "core id ", id, " out of range");
    return cores_[id];
}

const Core &
Machine::core(CoreId id) const
{
    jscale_assert(id < cores_.size(), "core id ", id, " out of range");
    return cores_[id];
}

void
Machine::enableCores(std::uint32_t n, EnablePolicy policy)
{
    jscale_assert(n >= 1, "at least one core must be enabled");
    jscale_assert(n <= cores_.size(), "cannot enable ", n, " of ",
                  cores_.size(), " cores");
    for (auto &c : cores_)
        c.setEnabled(false);
    if (policy == EnablePolicy::Compact) {
        for (std::uint32_t i = 0; i < n; ++i)
            cores_[i].setEnabled(true);
    } else {
        // Scatter: socket 0 core 0, socket 1 core 0, ..., socket 0
        // core 1, ... — spreads load across memory controllers.
        std::uint32_t enabled = 0;
        for (std::uint32_t round = 0;
             round < config_.cores_per_socket && enabled < n; ++round) {
            for (std::uint32_t s = 0;
                 s < config_.sockets && enabled < n; ++s) {
                cores_[s * config_.cores_per_socket + round]
                    .setEnabled(true);
                ++enabled;
            }
        }
    }
    enabled_count_ = n;
}

bool
Machine::setCoreOnline(CoreId id, bool online)
{
    Core &c = core(id);
    if (c.enabled() == online)
        return true;
    if (!online && enabled_count_ <= 1)
        return false; // never offline the last core
    c.setEnabled(online);
    enabled_count_ += online ? 1 : -1;
    if (online)
        c.setSpeedFactor(1.0);
    return true;
}

std::vector<CoreId>
Machine::enabledCoreIds() const
{
    std::vector<CoreId> ids;
    ids.reserve(enabled_count_);
    for (const auto &c : cores_) {
        if (c.enabled())
            ids.push_back(c.id());
    }
    return ids;
}

std::uint32_t
Machine::enabledSockets() const
{
    std::set<NodeId> sockets;
    for (const auto &c : cores_) {
        if (c.enabled())
            sockets.insert(c.socket());
    }
    return static_cast<std::uint32_t>(sockets.size());
}

Ticks
Machine::memCopyCost(NodeId from_node, NodeId mem_node, Bytes bytes) const
{
    double cost = static_cast<double>(bytes) /
                  config_.mem_bandwidth_bytes_per_ns;
    if (from_node != mem_node)
        cost *= config_.numa_remote_factor;
    return static_cast<Ticks>(std::llround(cost));
}

Bytes
Machine::totalMemory() const
{
    return config_.mem_per_node * config_.sockets;
}

} // namespace jscale::machine
