/**
 * @file
 * TaskProfiler: per-task latency attribution over the probe chains.
 *
 * Rides the RuntimeListener and SchedulerListener chains as a pure
 * observer — the runtime pays nothing when no profiler is attached and
 * never branches on profiling state. Every mutator's timeline is cut
 * into contiguous segments, each classified into one WaitBucket from
 * the thread's scheduler state plus the most recent cause probe
 * (monitor contention, wait-set park, channel block, GC wait,
 * admission park). Segments are closed and re-opened on every
 * classification change, so the buckets of one task window sum to the
 * window's wall time *by construction* — an integer-exact invariant
 * the check layer's latency-conservation oracle enforces.
 *
 * Task windows run from thread start (or the previous TaskDone) to the
 * next TaskDone. The epilogue after a thread's last task and the
 * in-flight window of a killed mutator are discarded (counted in
 * tasks_discarded), never attributed.
 */

#ifndef JSCALE_PROFILE_PROFILER_HH
#define JSCALE_PROFILE_PROFILER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "base/units.hh"
#include "jvm/runtime/listener.hh"
#include "jvm/runtime/vm.hh"
#include "os/sched_listener.hh"

namespace jscale::profile {

/**
 * The attribution observer. Construct, attach(vm) before run(), call
 * finishRun() after, then read summary(). One profiler observes one
 * run, like the tracer and lock profiler it sits beside.
 */
class TaskProfiler : public jvm::RuntimeListener,
                     public os::SchedulerListener
{
  public:
    TaskProfiler() = default;

    /** Subscribe to @p vm's runtime + scheduler probe chains. */
    void attach(jvm::JavaVm &vm);

    /** Unsubscribe (safe to call repeatedly). */
    void detach();

    /**
     * Install a per-task callback, fired at every attributed task
     * completion with the task's full bucket breakdown — the hook the
     * conservation oracle and telemetry counter tracks ride.
     */
    void
    setTaskSink(std::function<void(const jvm::SlowTaskRecord &)> sink)
    {
        sink_ = std::move(sink);
    }

    /** Close any open windows (end of run; open windows discard). */
    void finishRun(Ticks now);

    /** Aggregate results; @p topk bounds the slowest-task list. */
    jvm::ProfileSummary summary(std::uint32_t topk = 5) const;

    /** @name RuntimeListener probes (cause + task boundaries) */
    /** @{ */
    void onThreadStart(jvm::MutatorIndex thread, Ticks now) override;
    void onThreadFinish(jvm::MutatorIndex thread, Ticks now) override;
    void onTaskEnd(jvm::MutatorIndex thread, std::uint64_t task,
                   Ticks now) override;
    void onMonitorContended(jvm::MutatorIndex thread,
                            jvm::MonitorId monitor, Ticks now) override;
    void onMonitorWaitParked(jvm::MutatorIndex thread,
                             jvm::MonitorId monitor, Ticks now) override;
    void onChannelBlocked(jvm::MutatorIndex thread,
                          jvm::ChannelId channel, Ticks now) override;
    void onGcWaitBegin(jvm::MutatorIndex thread, bool local,
                       Ticks now) override;
    void onAdmissionParked(jvm::MutatorIndex thread, Ticks now) override;
    void onSafepointReached(std::uint64_t sequence, Ticks ttsp,
                            Ticks now) override;
    /**
     * Open-loop request pickup: restart the serving thread's window at
     * the dispatch stamp, so the window closed by the next TaskDone
     * covers exactly [dispatch, completion] — per-request service
     * decomposition for the traffic engine. The discarded prelude
     * (channel wait since the previous TaskDone) is the request's
     * *queueing* delay, accounted by the engine, not a lost task.
     */
    void onRequestDispatched(std::uint32_t tenant, std::uint64_t request,
                             jvm::MutatorIndex thread,
                             Ticks now) override;
    /** @} */

    /** @name SchedulerListener probes (state machine + STW phases)
     * All filtered to the attached VM's scheduling group: co-hosted
     * tenants' threads and safepoints are invisible to this profiler.
     */
    /** @{ */
    void onThreadState(const os::OsThread &t, os::ThreadState prev,
                       Ticks now) override;
    void onWorldStopRequested(std::uint32_t group, Ticks now) override;
    void onWorldResumed(std::uint32_t group, Ticks now) override;
    /** @} */

  private:
    /** Cause probes remembered until the matching Blocked/Sleeping
     *  transition consumes them. */
    enum class Cause : std::uint8_t
    {
        None,
        Lock,
        Waitset,
        Channel,
        AllocStall,
        Governor,
    };

    /** Global stop-the-world progress, for classifying Ready time. */
    enum class StwPhase : std::uint8_t { Running, Stopping, Paused };

    struct MutatorState
    {
        bool live = false;
        bool finished = false;
        /** Start of the current task window. */
        Ticks task_start = 0;
        /** Start of the current (open) segment. */
        Ticks seg_since = 0;
        /** Classification of the open segment. */
        jvm::WaitBucket bucket = jvm::WaitBucket::RunQueue;
        /** Pending block cause announced by the runtime probes. */
        Cause pending = Cause::None;
        jvm::MonitorId pending_monitor = 0;
        /** Monitor charged while the open segment is Lock. */
        jvm::MonitorId block_monitor = 0;
        /** Per-bucket accumulation of the current window. */
        Ticks buckets[jvm::kWaitBucketCount] = {};
    };

    MutatorState &state(jvm::MutatorIndex idx);

    /** Close the open segment at @p now and reclassify to @p next. */
    void switchBucket(MutatorState &m, jvm::WaitBucket next, Ticks now);

    /** Bucket for Ready time under the current STW phase. */
    jvm::WaitBucket readyBucket() const;

    /** Re-classify every thread currently in a Ready-class bucket. */
    void reclassifyReady(Ticks now);

    /** Close the window of @p m at @p now without attributing it. */
    void discardWindow(MutatorState &m, Ticks now);

    std::vector<MutatorState> mutators_;
    StwPhase stw_ = StwPhase::Running;

    std::uint64_t tasks_ = 0;
    std::uint64_t tasks_discarded_ = 0;
    Ticks bucket_total_[jvm::kWaitBucketCount] = {};
    stats::LatencyHistogram latency_;
    stats::LatencyHistogram bucket_hist_[jvm::kWaitBucketCount];
    /** monitor id -> (wait, blocks); ordered for deterministic output. */
    std::map<jvm::MonitorId, std::pair<Ticks, std::uint64_t>> lock_waits_;
    /** All attributed tasks' slow-task records, kept bounded. */
    std::vector<jvm::SlowTaskRecord> slowest_;
    /** Bound on slowest_ retention (generous; summary() trims to K). */
    static constexpr std::size_t kSlowKeep = 64;

    std::function<void(const jvm::SlowTaskRecord &)> sink_;
    jvm::JavaVm *vm_ = nullptr;
    /** The attached VM's scheduling group (tenant); set by attach(). */
    std::uint32_t group_ = 0;
};

} // namespace jscale::profile

#endif // JSCALE_PROFILE_PROFILER_HH
