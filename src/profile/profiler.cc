#include "profile/profiler.hh"

#include <algorithm>

#include "base/logging.hh"

namespace jscale::profile {

void
TaskProfiler::attach(jvm::JavaVm &vm)
{
    jscale_assert(vm_ == nullptr, "profiler already attached");
    vm_ = &vm;
    group_ = vm.config().tenant;
    vm.listeners().add(this);
    vm.scheduler().listeners().add(this);
}

void
TaskProfiler::detach()
{
    if (vm_ == nullptr)
        return;
    vm_->listeners().remove(this);
    vm_->scheduler().listeners().remove(this);
    vm_ = nullptr;
}

TaskProfiler::MutatorState &
TaskProfiler::state(jvm::MutatorIndex idx)
{
    if (idx >= mutators_.size())
        mutators_.resize(idx + 1);
    return mutators_[idx];
}

void
TaskProfiler::switchBucket(MutatorState &m, jvm::WaitBucket next,
                           Ticks now)
{
    const Ticks span = now - m.seg_since;
    const auto cur = static_cast<std::size_t>(m.bucket);
    m.buckets[cur] += span;
    if (m.bucket == jvm::WaitBucket::Lock) {
        auto &[wait, blocks] = lock_waits_[m.block_monitor];
        wait += span;
        if (next != jvm::WaitBucket::Lock)
            ++blocks;
    }
    m.seg_since = now;
    m.bucket = next;
}

jvm::WaitBucket
TaskProfiler::readyBucket() const
{
    switch (stw_) {
      case StwPhase::Stopping: return jvm::WaitBucket::Ttsp;
      case StwPhase::Paused: return jvm::WaitBucket::GcStw;
      case StwPhase::Running: break;
    }
    return jvm::WaitBucket::RunQueue;
}

void
TaskProfiler::reclassifyReady(Ticks now)
{
    const jvm::WaitBucket next = readyBucket();
    for (MutatorState &m : mutators_) {
        if (!m.live || m.finished)
            continue;
        switch (m.bucket) {
          case jvm::WaitBucket::RunQueue:
          case jvm::WaitBucket::Ttsp:
          case jvm::WaitBucket::GcStw:
            switchBucket(m, next, now);
            break;
          default:
            break;
        }
    }
}

void
TaskProfiler::discardWindow(MutatorState &m, Ticks now)
{
    switchBucket(m, m.bucket, now);
    if (now > m.task_start)
        ++tasks_discarded_;
    m.task_start = now;
    std::fill(std::begin(m.buckets), std::end(m.buckets), 0);
}

void
TaskProfiler::onThreadStart(jvm::MutatorIndex thread, Ticks now)
{
    MutatorState &m = state(thread);
    m.live = true;
    m.task_start = now;
    m.seg_since = now;
    m.bucket = jvm::WaitBucket::RunQueue;
}

void
TaskProfiler::onThreadFinish(jvm::MutatorIndex thread, Ticks now)
{
    MutatorState &m = state(thread);
    if (!m.live || m.finished)
        return;
    discardWindow(m, now);
    m.finished = true;
}

void
TaskProfiler::onTaskEnd(jvm::MutatorIndex thread, std::uint64_t task,
                        Ticks now)
{
    MutatorState &m = state(thread);
    if (!m.live || m.finished)
        return;
    switchBucket(m, m.bucket, now); // close the open segment

    jvm::SlowTaskRecord rec;
    rec.task = task;
    rec.thread = thread;
    rec.start = m.task_start;
    rec.end = now;
    std::copy(std::begin(m.buckets), std::end(m.buckets),
              std::begin(rec.buckets));

    ++tasks_;
    latency_.add(rec.wall());
    for (std::size_t i = 0; i < jvm::kWaitBucketCount; ++i) {
        bucket_total_[i] += m.buckets[i];
        bucket_hist_[i].add(m.buckets[i]);
    }

    if (sink_)
        sink_(rec);

    // Keep the slowest records, wall-time descending, sequence-number
    // ascending on ties — a total order, so retention is deterministic.
    const auto slower = [](const jvm::SlowTaskRecord &a,
                           const jvm::SlowTaskRecord &b) {
        if (a.wall() != b.wall())
            return a.wall() > b.wall();
        return a.task < b.task;
    };
    slowest_.insert(
        std::upper_bound(slowest_.begin(), slowest_.end(), rec, slower),
        rec);
    if (slowest_.size() > kSlowKeep)
        slowest_.resize(kSlowKeep);

    // Open the next window.
    m.task_start = now;
    std::fill(std::begin(m.buckets), std::end(m.buckets), 0);
}

void
TaskProfiler::onMonitorContended(jvm::MutatorIndex thread,
                                 jvm::MonitorId monitor, Ticks now)
{
    MutatorState &m = state(thread);
    if (!m.live || m.finished)
        return;
    if (m.bucket == jvm::WaitBucket::Waitset) {
        // notify() moved the thread from the wait set to the acquire
        // queue while it stays Blocked: reclassify mid-block.
        switchBucket(m, jvm::WaitBucket::Lock, now);
        m.block_monitor = monitor;
        return;
    }
    m.pending = Cause::Lock;
    m.pending_monitor = monitor;
}

void
TaskProfiler::onMonitorWaitParked(jvm::MutatorIndex thread,
                                  jvm::MonitorId monitor, Ticks now)
{
    (void)now;
    MutatorState &m = state(thread);
    m.pending = Cause::Waitset;
    m.pending_monitor = monitor;
}

void
TaskProfiler::onChannelBlocked(jvm::MutatorIndex thread,
                               jvm::ChannelId channel, Ticks now)
{
    (void)channel; (void)now;
    state(thread).pending = Cause::Channel;
}

void
TaskProfiler::onGcWaitBegin(jvm::MutatorIndex thread, bool local,
                            Ticks now)
{
    (void)local; (void)now;
    state(thread).pending = Cause::AllocStall;
}

void
TaskProfiler::onAdmissionParked(jvm::MutatorIndex thread, Ticks now)
{
    (void)now;
    state(thread).pending = Cause::Governor;
}

void
TaskProfiler::onSafepointReached(std::uint64_t sequence, Ticks ttsp,
                                 Ticks now)
{
    (void)sequence; (void)ttsp;
    stw_ = StwPhase::Paused;
    reclassifyReady(now);
}

void
TaskProfiler::onThreadState(const os::OsThread &t, os::ThreadState prev,
                            Ticks now)
{
    (void)prev;
    if (t.kind() != os::ThreadKind::Mutator || t.group() != group_)
        return;
    MutatorState &m = state(static_cast<jvm::MutatorIndex>(t.localId()));
    if (!m.live || m.finished)
        return;

    jvm::WaitBucket next;
    switch (t.state()) {
      case os::ThreadState::Running:
        next = jvm::WaitBucket::Cpu;
        break;
      case os::ThreadState::Ready:
        next = readyBucket();
        break;
      case os::ThreadState::Blocked:
        switch (m.pending) {
          case Cause::Lock:
            next = jvm::WaitBucket::Lock;
            m.block_monitor = m.pending_monitor;
            break;
          case Cause::Waitset: next = jvm::WaitBucket::Waitset; break;
          case Cause::Channel: next = jvm::WaitBucket::Channel; break;
          case Cause::AllocStall:
            next = jvm::WaitBucket::AllocStall;
            break;
          case Cause::Governor: next = jvm::WaitBucket::Governor; break;
          case Cause::None: next = jvm::WaitBucket::Other; break;
          default: next = jvm::WaitBucket::Other; break;
        }
        m.pending = Cause::None;
        break;
      case os::ThreadState::Sleeping:
        // A local (compartment) collection parks its requester in a
        // timed sleep; anything else sleeping is a generic stall.
        next = m.pending == Cause::AllocStall
                   ? jvm::WaitBucket::AllocStall
                   : jvm::WaitBucket::Stall;
        m.pending = Cause::None;
        break;
      case os::ThreadState::Finished:
        discardWindow(m, now);
        m.finished = true;
        return;
      case os::ThreadState::New:
        return;
      default:
        return;
    }
    switchBucket(m, next, now);
}

void
TaskProfiler::onWorldStopRequested(std::uint32_t group, Ticks now)
{
    if (group != group_)
        return;
    stw_ = StwPhase::Stopping;
    reclassifyReady(now);
}

void
TaskProfiler::onWorldResumed(std::uint32_t group, Ticks now)
{
    if (group != group_)
        return;
    stw_ = StwPhase::Running;
    reclassifyReady(now);
}

void
TaskProfiler::onRequestDispatched(std::uint32_t tenant,
                                  std::uint64_t request,
                                  jvm::MutatorIndex thread, Ticks now)
{
    (void)tenant; (void)request; // probes arrive on our VM's chain only
    MutatorState &m = state(thread);
    if (!m.live || m.finished)
        return;
    // Close the open segment, drop the accumulated prelude (queueing,
    // charged by the traffic engine) and restart the window here. The
    // current classification carries over: the thread is on-CPU fetching
    // its next action, so the segment from `now` accumulates as Cpu.
    switchBucket(m, m.bucket, now);
    m.task_start = now;
    std::fill(std::begin(m.buckets), std::end(m.buckets), 0);
}

void
TaskProfiler::finishRun(Ticks now)
{
    for (MutatorState &m : mutators_) {
        if (!m.live || m.finished)
            continue;
        discardWindow(m, now);
        m.finished = true;
    }
}

jvm::ProfileSummary
TaskProfiler::summary(std::uint32_t topk) const
{
    jvm::ProfileSummary s;
    s.enabled = true;
    s.tasks = tasks_;
    s.tasks_discarded = tasks_discarded_;
    std::copy(std::begin(bucket_total_), std::end(bucket_total_),
              std::begin(s.bucket_total));
    s.latency = latency_;
    for (std::size_t i = 0; i < jvm::kWaitBucketCount; ++i)
        s.bucket_hist[i] = bucket_hist_[i];
    const std::size_t k =
        std::min<std::size_t>(topk, slowest_.size());
    s.slowest.assign(slowest_.begin(), slowest_.begin() + k);
    for (const auto &[monitor, totals] : lock_waits_) {
        jvm::MonitorWaitTotal w;
        w.monitor = monitor;
        w.wait = totals.first;
        w.blocks = totals.second;
        s.lock_waits.push_back(w);
    }
    std::sort(s.lock_waits.begin(), s.lock_waits.end(),
              [](const jvm::MonitorWaitTotal &a,
                 const jvm::MonitorWaitTotal &b) {
                  if (a.wait != b.wait)
                      return a.wait > b.wait;
                  return a.monitor < b.monitor;
              });
    return s;
}

} // namespace jscale::profile
