/**
 * @file
 * Whole-system determinism: identical configurations must replay
 * identically event by event, including with observation tools
 * attached — the property every debugging and comparison workflow in
 * this project relies on.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "lockprof/lockprof.hh"
#include "trace/trace.hh"

namespace {

using namespace jscale;

core::ExperimentConfig
cfgWith(std::uint64_t seed)
{
    core::ExperimentConfig cfg;
    cfg.workload_scale = 0.05;
    cfg.seed = seed;
    return cfg;
}

TEST(Determinism, TraceStreamsIdenticalAcrossReplays)
{
    auto capture = [](std::uint64_t seed) {
        core::ExperimentRunner runner(cfgWith(seed));
        trace::MemoryTraceSink sink;
        trace::ObjectTracer tracer(sink);
        runner.runApp("lusearch", 8, [&tracer](jvm::JavaVm &vm) {
            vm.listeners().add(&tracer);
        });
        return sink;
    };
    const auto a = capture(5);
    const auto b = capture(5);
    ASSERT_EQ(a.events().size(), b.events().size());
    for (std::size_t i = 0; i < a.events().size(); ++i)
        ASSERT_EQ(a.events()[i], b.events()[i]) << "event " << i;
}

TEST(Determinism, ObserversDoNotPerturbTheRun)
{
    // Attaching a tracer/profiler must not change simulated behaviour.
    core::ExperimentRunner bare_runner(cfgWith(9));
    const auto bare = bare_runner.runApp("xalan", 8);

    core::ExperimentRunner observed_runner(cfgWith(9));
    trace::MemoryTraceSink sink;
    trace::ObjectTracer tracer(sink);
    lockprof::LockProfiler profiler;
    const auto observed = observed_runner.runApp(
        "xalan", 8, [&](jvm::JavaVm &vm) {
            vm.listeners().add(&tracer);
            vm.listeners().add(&profiler);
        });

    EXPECT_EQ(bare.wall_time, observed.wall_time);
    EXPECT_EQ(bare.gc_time, observed.gc_time);
    EXPECT_EQ(bare.sim_events, observed.sim_events);
    EXPECT_EQ(bare.locks.contentions, observed.locks.contentions);
}

TEST(Determinism, AllAppsReplayExactly)
{
    for (const std::string app :
         {"sunflow", "lusearch", "xalan", "h2", "eclipse", "jython"}) {
        core::ExperimentRunner a(cfgWith(3));
        core::ExperimentRunner b(cfgWith(3));
        const auto ra = a.runApp(app, 4);
        const auto rb = b.runApp(app, 4);
        EXPECT_EQ(ra.wall_time, rb.wall_time) << app;
        EXPECT_EQ(ra.sim_events, rb.sim_events) << app;
        EXPECT_EQ(ra.heap.objects_allocated, rb.heap.objects_allocated)
            << app;
        EXPECT_EQ(ra.gc.minor_count, rb.gc.minor_count) << app;
    }
}

TEST(Determinism, CompartmentalizedModeReplays)
{
    auto run = [] {
        auto cfg = cfgWith(11);
        cfg.vm.heap.compartmentalized = true;
        core::ExperimentRunner runner(cfg);
        return runner.runApp("xalan", 8);
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.wall_time, b.wall_time);
    EXPECT_EQ(a.gc.local_count, b.gc.local_count);
}

TEST(Determinism, BiasedSchedulingReplays)
{
    auto run = [] {
        auto cfg = cfgWith(13);
        cfg.biased_scheduling = true;
        core::ExperimentRunner runner(cfg);
        return runner.runApp("sunflow", 8);
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.wall_time, b.wall_time);
    EXPECT_EQ(a.sim_events, b.sim_events);
}

} // namespace
