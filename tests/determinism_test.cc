/**
 * @file
 * Whole-system determinism: identical configurations must replay
 * identically event by event, including with observation tools
 * attached — the property every debugging and comparison workflow in
 * this project relies on.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/experiment.hh"
#include "core/report.hh"
#include "jvm/locks/policy.hh"
#include "lockprof/lockprof.hh"
#include "trace/trace.hh"

namespace {

using namespace jscale;

core::ExperimentConfig
cfgWith(std::uint64_t seed)
{
    core::ExperimentConfig cfg;
    cfg.workload_scale = 0.05;
    cfg.seed = seed;
    return cfg;
}

TEST(Determinism, TraceStreamsIdenticalAcrossReplays)
{
    auto capture = [](std::uint64_t seed) {
        core::ExperimentRunner runner(cfgWith(seed));
        trace::MemoryTraceSink sink;
        trace::ObjectTracer tracer(sink);
        runner.runApp("lusearch", 8, [&tracer](jvm::JavaVm &vm) {
            vm.listeners().add(&tracer);
        });
        return sink;
    };
    const auto a = capture(5);
    const auto b = capture(5);
    ASSERT_EQ(a.events().size(), b.events().size());
    for (std::size_t i = 0; i < a.events().size(); ++i)
        ASSERT_EQ(a.events()[i], b.events()[i]) << "event " << i;
}

TEST(Determinism, ObserversDoNotPerturbTheRun)
{
    // Attaching a tracer/profiler must not change simulated behaviour.
    core::ExperimentRunner bare_runner(cfgWith(9));
    const auto bare = bare_runner.runApp("xalan", 8);

    core::ExperimentRunner observed_runner(cfgWith(9));
    trace::MemoryTraceSink sink;
    trace::ObjectTracer tracer(sink);
    lockprof::LockProfiler profiler;
    const auto observed = observed_runner.runApp(
        "xalan", 8, [&](jvm::JavaVm &vm) {
            vm.listeners().add(&tracer);
            vm.listeners().add(&profiler);
        });

    EXPECT_EQ(bare.wall_time, observed.wall_time);
    EXPECT_EQ(bare.gc_time, observed.gc_time);
    EXPECT_EQ(bare.sim_events, observed.sim_events);
    EXPECT_EQ(bare.locks.contentions, observed.locks.contentions);
}

TEST(Determinism, AllAppsReplayExactly)
{
    for (const std::string app :
         {"sunflow", "lusearch", "xalan", "h2", "eclipse", "jython"}) {
        core::ExperimentRunner a(cfgWith(3));
        core::ExperimentRunner b(cfgWith(3));
        const auto ra = a.runApp(app, 4);
        const auto rb = b.runApp(app, 4);
        EXPECT_EQ(ra.wall_time, rb.wall_time) << app;
        EXPECT_EQ(ra.sim_events, rb.sim_events) << app;
        EXPECT_EQ(ra.heap.objects_allocated, rb.heap.objects_allocated)
            << app;
        EXPECT_EQ(ra.gc.minor_count, rb.gc.minor_count) << app;
    }
}

TEST(Determinism, CompartmentalizedModeReplays)
{
    auto run = [] {
        auto cfg = cfgWith(11);
        cfg.vm.heap.compartmentalized = true;
        core::ExperimentRunner runner(cfg);
        return runner.runApp("xalan", 8);
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.wall_time, b.wall_time);
    EXPECT_EQ(a.gc.local_count, b.gc.local_count);
}

TEST(Determinism, BiasedSchedulingReplays)
{
    auto run = [] {
        auto cfg = cfgWith(13);
        cfg.biased_scheduling = true;
        core::ExperimentRunner runner(cfg);
        return runner.runApp("sunflow", 8);
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.wall_time, b.wall_time);
    EXPECT_EQ(a.sim_events, b.sim_events);
}

// ---------------------------------------------------------------------
// Sequential-vs-parallel equivalence: the --jobs contract. A sweep at
// --jobs 8 must be indistinguishable from --jobs 1 — same RunResult
// fields, same report bytes, same full stat-registry dumps.
// ---------------------------------------------------------------------

/** Full-field comparison of two runs via their stat snapshots. */
void
expectRunsEqual(const jvm::RunResult &a, const jvm::RunResult &b,
                const std::string &label)
{
    const auto sa = core::runStatSnapshot(a);
    const auto sb = core::runStatSnapshot(b);
    ASSERT_EQ(sa.values().size(), sb.values().size()) << label;
    for (std::size_t i = 0; i < sa.values().size(); ++i) {
        EXPECT_EQ(sa.values()[i].name, sb.values()[i].name) << label;
        EXPECT_EQ(sa.values()[i].value, sb.values()[i].value)
            << label << ": " << sa.values()[i].name;
    }
    std::ostringstream csv_a, csv_b;
    sa.printCsv(csv_a);
    sb.printCsv(csv_b);
    EXPECT_EQ(csv_a.str(), csv_b.str()) << label;
}

TEST(ParallelEquivalence, SweepMatchesSequential)
{
    const std::vector<std::uint32_t> threads = {1, 2, 4, 8};
    auto sweep = [&threads](std::uint32_t jobs) {
        auto cfg = cfgWith(21);
        cfg.jobs = jobs;
        core::ExperimentRunner runner(cfg);
        return runner.sweep("xalan", threads);
    };
    const auto seq = sweep(1);
    const auto par = sweep(8);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        EXPECT_EQ(seq[i].threads, par[i].threads);
        expectRunsEqual(seq[i], par[i],
                        "xalan t" + std::to_string(seq[i].threads));
    }
}

TEST(ParallelEquivalence, AllAppsMatchSequential)
{
    const std::vector<std::string> apps = {
        "sunflow", "lusearch", "xalan", "h2", "eclipse", "jython"};
    const std::vector<std::uint32_t> threads = {2, 4};
    auto sweepAll = [&](std::uint32_t jobs) {
        auto cfg = cfgWith(23);
        cfg.jobs = jobs;
        core::ExperimentRunner runner(cfg);
        return runner.sweepApps(apps, threads);
    };
    const auto seq = sweepAll(1);
    const auto par = sweepAll(8);
    ASSERT_EQ(seq.size(), par.size());
    for (const auto &app : apps) {
        ASSERT_EQ(seq.at(app).size(), par.at(app).size()) << app;
        for (std::size_t i = 0; i < seq.at(app).size(); ++i) {
            expectRunsEqual(
                seq.at(app)[i], par.at(app)[i],
                app + " t" + std::to_string(seq.at(app)[i].threads));
        }
    }
}

TEST(ParallelEquivalence, CsvReportBytesIdentical)
{
    auto report = [](std::uint32_t jobs) {
        auto cfg = cfgWith(25);
        cfg.jobs = jobs;
        core::ExperimentRunner runner(cfg);
        core::SweepSet sweeps =
            runner.sweepApps({"sunflow", "h2"}, {1, 2, 4});
        std::ostringstream os;
        core::writeScalabilityCsv(os, sweeps);
        return os.str();
    };
    EXPECT_EQ(report(1), report(8));
}

TEST(ParallelEquivalence, ReplicationMatchesSequential)
{
    auto replicate = [](std::uint32_t jobs) {
        auto cfg = cfgWith(27);
        cfg.jobs = jobs;
        core::ExperimentRunner runner(cfg);
        return runner.runReplicated("lusearch", 4, 4);
    };
    const auto seq = replicate(1);
    const auto par = replicate(8);
    ASSERT_EQ(seq.size(), par.size());
    // Replicas use distinct derived seeds, so they must differ from
    // each other but match across jobs settings pairwise.
    EXPECT_NE(seq[0].wall_time, seq[1].wall_time);
    for (std::size_t i = 0; i < seq.size(); ++i)
        expectRunsEqual(seq[i], par[i],
                        "replica " + std::to_string(i));
}

TEST(ParallelEquivalence, GovernedSweepMatchesSequential)
{
    // The governor steers each run, so this is the stronger form of the
    // --jobs contract: admission decisions (and thus parks, targets and
    // wall times) must be byte-identical at any parallelism.
    const std::vector<std::uint32_t> threads = {2, 4, 8};
    auto sweep = [&threads](std::uint32_t jobs) {
        auto cfg = cfgWith(31);
        cfg.jobs = jobs;
        cfg.governor.mode = control::GovernorMode::HillClimb;
        cfg.governor.interval = 1 * units::MS;
        core::ExperimentRunner runner(cfg);
        return runner.sweep("h2", threads);
    };
    const auto seq = sweep(1);
    const auto par = sweep(8);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        EXPECT_EQ(seq[i].governor.enabled, par[i].governor.enabled);
        expectRunsEqual(seq[i], par[i],
                        "governed h2 t" +
                            std::to_string(seq[i].threads));
    }
}

TEST(ParallelEquivalence, GovernedCsvReportBytesIdentical)
{
    auto report = [](control::GovernorMode mode, std::uint32_t jobs) {
        auto cfg = cfgWith(33);
        cfg.jobs = jobs;
        cfg.governor.mode = mode;
        cfg.governor.interval = 1 * units::MS;
        core::ExperimentRunner runner(cfg);
        core::SweepSet sweeps =
            runner.sweepApps({"jython", "h2"}, {2, 4});
        std::ostringstream os;
        core::writeScalabilityCsv(os, sweeps);
        core::writeUslCsv(os, sweeps);
        return os.str();
    };
    EXPECT_EQ(report(control::GovernorMode::HillClimb, 1),
              report(control::GovernorMode::HillClimb, 8));
    EXPECT_EQ(report(control::GovernorMode::UslGuided, 1),
              report(control::GovernorMode::UslGuided, 8));
}

TEST(ParallelEquivalence, EveryAdmissionPolicyMatchesSequential)
{
    // The policy machinery (barging cursor, culling rotation, LCR
    // capacity measurement, coherence penalties) lives entirely inside
    // the simulated VM, so a lock-saturated sweep must stay
    // byte-identical at any --jobs under every admission policy.
    const std::vector<std::uint32_t> threads = {2, 4, 8};
    for (const jvm::LockPolicy policy : jvm::kAllLockPolicies) {
        auto sweep = [&](std::uint32_t jobs) {
            auto cfg = cfgWith(35);
            cfg.jobs = jobs;
            cfg.vm.locks.policy = policy;
            cfg.vm.locks.handoff_base = 250;
            cfg.vm.locks.coherence_cost = 500;
            core::ExperimentRunner runner(cfg);
            return runner.sweep("hotlock", threads);
        };
        const auto seq = sweep(1);
        const auto par = sweep(8);
        ASSERT_EQ(seq.size(), par.size());
        for (std::size_t i = 0; i < seq.size(); ++i) {
            EXPECT_EQ(seq[i].locks.handoffs, par[i].locks.handoffs);
            EXPECT_EQ(seq[i].locks.barged_grants,
                      par[i].locks.barged_grants);
            EXPECT_EQ(seq[i].locks.waiters_passivated,
                      par[i].locks.waiters_passivated);
            expectRunsEqual(seq[i], par[i],
                            std::string(jvm::lockPolicyName(policy)) +
                                " t" + std::to_string(seq[i].threads));
        }
    }
}

TEST(ParallelEquivalence, JobsZeroUsesAllCoresAndStillMatches)
{
    auto sweep = [](std::uint32_t jobs) {
        auto cfg = cfgWith(29);
        cfg.jobs = jobs;
        core::ExperimentRunner runner(cfg);
        return runner.sweep("eclipse", {1, 4});
    };
    const auto seq = sweep(1);
    const auto def = sweep(0); // hardware concurrency
    ASSERT_EQ(seq.size(), def.size());
    for (std::size_t i = 0; i < seq.size(); ++i)
        expectRunsEqual(seq[i], def[i], "jobs0");
}

} // namespace
