/**
 * @file
 * Tests for Java Object.wait()/notify() semantics on monitors and for
 * the wait-for-graph deadlock detector.
 */

#include <gtest/gtest.h>

#include <vector>

#include "test_apps.hh"

namespace {

using namespace jscale;
using test::VmHarness;

/** Scripted app: explicit per-thread action lists. */
class ScriptApp : public jvm::ApplicationModel
{
  public:
    using Setup = std::function<void(jvm::AppContext &,
                                     std::vector<jvm::MonitorId> &)>;
    using Script =
        std::function<std::vector<jvm::Action>(std::uint32_t,
                                               const std::vector<
                                                   jvm::MonitorId> &)>;

    ScriptApp(std::uint32_t monitors, Script script)
        : n_monitors_(monitors), script_(std::move(script))
    {}

    std::string appName() const override { return "script-app"; }

    void
    setup(jvm::AppContext &ctx) override
    {
        monitors_.clear();
        for (std::uint32_t i = 0; i < n_monitors_; ++i) {
            monitors_.push_back(
                ctx.createMonitor("m" + std::to_string(i)));
        }
    }

    std::unique_ptr<jvm::ActionSource>
    threadSource(std::uint32_t idx, jvm::AppContext &) override
    {
        return std::make_unique<Src>(script_(idx, monitors_));
    }

  private:
    class Src : public jvm::ActionSource
    {
      public:
        explicit Src(std::vector<jvm::Action> script)
            : script_(std::move(script))
        {
            script_.push_back(jvm::Action::end());
        }

        jvm::Action
        next() override
        {
            return script_[pos_ < script_.size() ? pos_++
                                                 : script_.size() - 1];
        }

      private:
        std::vector<jvm::Action> script_;
        std::size_t pos_ = 0;
    };

    std::uint32_t n_monitors_;
    Script script_;
    std::vector<jvm::MonitorId> monitors_;
};

TEST(WaitNotify, WaiterResumesAfterNotify)
{
    using jvm::Action;
    // Thread 0 waits on m0; thread 1 computes, then notifies.
    ScriptApp app(1, [](std::uint32_t idx, const auto &m) {
        std::vector<Action> s;
        if (idx == 0) {
            s.push_back(Action::monitorEnter(m[0]));
            s.push_back(Action::monitorWait(m[0]));
            // Resumes holding the monitor again:
            s.push_back(Action::compute(1 * units::US));
            s.push_back(Action::monitorExit(m[0]));
            s.push_back(Action::taskDone());
        } else {
            s.push_back(Action::compute(200 * units::US));
            s.push_back(Action::monitorEnter(m[0]));
            s.push_back(Action::monitorNotify(m[0]));
            s.push_back(Action::monitorExit(m[0]));
            s.push_back(Action::taskDone());
        }
        return s;
    });
    VmHarness h(2);
    const jvm::RunResult r = h.vm.run(app, 2);
    EXPECT_EQ(r.total_tasks, 2u);
    EXPECT_EQ(r.locks.waits, 1u);
    EXPECT_EQ(r.locks.notifies, 1u);
    // The waiter's wait counts as one re-acquisition contention.
    EXPECT_GE(r.locks.contentions, 1u);
}

TEST(WaitNotify, NotifyAllWakesEveryWaiter)
{
    using jvm::Action;
    constexpr std::uint32_t kWaiters = 5;
    ScriptApp app(1, [](std::uint32_t idx, const auto &m) {
        std::vector<Action> s;
        if (idx < kWaiters) {
            s.push_back(Action::monitorEnter(m[0]));
            s.push_back(Action::monitorWait(m[0]));
            s.push_back(Action::monitorExit(m[0]));
            s.push_back(Action::taskDone());
        } else {
            s.push_back(Action::compute(500 * units::US));
            s.push_back(Action::monitorEnter(m[0]));
            s.push_back(Action::monitorNotify(m[0], 0)); // notifyAll
            s.push_back(Action::monitorExit(m[0]));
            s.push_back(Action::taskDone());
        }
        return s;
    });
    VmHarness h(8);
    const jvm::RunResult r = h.vm.run(app, kWaiters + 1);
    EXPECT_EQ(r.total_tasks, kWaiters + 1u);
    EXPECT_EQ(r.locks.waits, kWaiters);
}

TEST(WaitNotify, NotifyWithoutWaitersIsANoOp)
{
    using jvm::Action;
    ScriptApp app(1, [](std::uint32_t, const auto &m) {
        std::vector<Action> s;
        s.push_back(Action::monitorEnter(m[0]));
        s.push_back(Action::monitorNotify(m[0]));
        s.push_back(Action::monitorExit(m[0]));
        s.push_back(Action::taskDone());
        return s;
    });
    VmHarness h(2);
    const jvm::RunResult r = h.vm.run(app, 1);
    EXPECT_EQ(r.total_tasks, 1u);
    EXPECT_EQ(r.locks.notifies, 1u);
}

TEST(WaitNotify, WaitRequiresOwnership)
{
    using jvm::Action;
    ScriptApp app(1, [](std::uint32_t, const auto &m) {
        std::vector<Action> s;
        s.push_back(Action::monitorWait(m[0])); // never acquired!
        return s;
    });
    EXPECT_DEATH({
        VmHarness h(2);
        const_cast<ScriptApp &>(app); // silence unused warnings
        ScriptApp bad(1, [](std::uint32_t, const auto &m) {
            std::vector<jvm::Action> s;
            s.push_back(jvm::Action::monitorWait(m[0]));
            return s;
        });
        h.vm.run(bad, 1);
    }, "wait");
}

TEST(WaitNotify, ProducerConsumerViaWaitNotify)
{
    // Classic guarded handoff: consumer waits until the producer
    // notifies, N rounds, strictly alternating through the monitor.
    using jvm::Action;
    constexpr int kRounds = 10;
    ScriptApp app(1, [](std::uint32_t idx, const auto &m) {
        std::vector<Action> s;
        if (idx == 0) { // consumer
            for (int i = 0; i < kRounds; ++i) {
                s.push_back(Action::monitorEnter(m[0]));
                s.push_back(Action::monitorWait(m[0]));
                s.push_back(Action::compute(2 * units::US));
                s.push_back(Action::monitorExit(m[0]));
                s.push_back(Action::taskDone());
            }
        } else { // producer
            for (int i = 0; i < kRounds; ++i) {
                s.push_back(Action::compute(100 * units::US));
                s.push_back(Action::monitorEnter(m[0]));
                s.push_back(Action::monitorNotify(m[0]));
                s.push_back(Action::monitorExit(m[0]));
                s.push_back(Action::taskDone());
            }
        }
        return s;
    });
    VmHarness h(2);
    const jvm::RunResult r = h.vm.run(app, 2);
    EXPECT_EQ(r.total_tasks, 2u * kRounds);
    EXPECT_EQ(r.locks.waits, static_cast<std::uint64_t>(kRounds));
    EXPECT_EQ(r.locks.notifies, static_cast<std::uint64_t>(kRounds));
}

TEST(DeadlockDetector, AbBaDeadlockIsReportedWithCycle)
{
    using jvm::Action;
    // Thread 0: lock m0, then m1. Thread 1: lock m1, then m0, with
    // compute placed so both grab their first lock before the second.
    ScriptApp app(2, [](std::uint32_t idx, const auto &m) {
        std::vector<Action> s;
        const jvm::MonitorId first = idx == 0 ? m[0] : m[1];
        const jvm::MonitorId second = idx == 0 ? m[1] : m[0];
        s.push_back(Action::monitorEnter(first));
        s.push_back(Action::compute(500 * units::US));
        s.push_back(Action::monitorEnter(second));
        s.push_back(Action::monitorExit(second));
        s.push_back(Action::monitorExit(first));
        s.push_back(Action::taskDone());
        return s;
    });
    EXPECT_DEATH({
        VmHarness h(2);
        ScriptApp bad(2, [](std::uint32_t idx, const auto &m) {
            std::vector<jvm::Action> s;
            const jvm::MonitorId first = idx == 0 ? m[0] : m[1];
            const jvm::MonitorId second = idx == 0 ? m[1] : m[0];
            s.push_back(jvm::Action::monitorEnter(first));
            s.push_back(jvm::Action::compute(500 * units::US));
            s.push_back(jvm::Action::monitorEnter(second));
            s.push_back(jvm::Action::monitorExit(second));
            s.push_back(jvm::Action::monitorExit(first));
            return s;
        });
        h.vm.run(bad, 2);
    }, "deadlock detected");
    (void)app;
}

TEST(DeadlockDetector, OrderedLockingNeverTriggers)
{
    using jvm::Action;
    ScriptApp app(2, [](std::uint32_t, const auto &m) {
        std::vector<Action> s;
        for (int i = 0; i < 20; ++i) {
            s.push_back(Action::monitorEnter(m[0]));
            s.push_back(Action::monitorEnter(m[1]));
            s.push_back(Action::compute(2 * units::US));
            s.push_back(Action::monitorExit(m[1]));
            s.push_back(Action::monitorExit(m[0]));
            s.push_back(Action::taskDone());
        }
        return s;
    });
    VmHarness h(4);
    const jvm::RunResult r = h.vm.run(app, 4);
    EXPECT_EQ(r.total_tasks, 4u * 20u);
}

} // namespace
