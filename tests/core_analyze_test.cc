/**
 * @file
 * Tests for the ScalabilityAnalyzer on synthetic RunResults.
 */

#include <gtest/gtest.h>

#include "core/analyze.hh"

namespace {

using namespace jscale;
using core::ScalabilityAnalyzer;

jvm::RunResult
makeResult(std::uint32_t threads, Ticks wall, Ticks gc,
           std::vector<std::uint64_t> tasks_per_thread)
{
    jvm::RunResult r;
    r.threads = threads;
    r.cores = threads;
    r.wall_time = wall;
    r.gc_time = gc;
    for (std::size_t i = 0; i < tasks_per_thread.size(); ++i) {
        jvm::ThreadSummary ts;
        ts.name = "t" + std::to_string(i);
        ts.kind = os::ThreadKind::Mutator;
        ts.tasks_completed = tasks_per_thread[i];
        r.thread_summaries.push_back(ts);
        r.total_tasks += tasks_per_thread[i];
    }
    return r;
}

TEST(Analyzer, SpeedupAgainstBase)
{
    const auto base = makeResult(1, 1000, 0, {100});
    const auto fast = makeResult(4, 250, 0, {25, 25, 25, 25});
    EXPECT_DOUBLE_EQ(ScalabilityAnalyzer::speedup(base, fast), 4.0);
    EXPECT_DOUBLE_EQ(ScalabilityAnalyzer::speedup(base, base), 1.0);
}

TEST(Analyzer, MutatorSpeedupExcludesGc)
{
    const auto base = makeResult(1, 1000, 200, {100});
    const auto fast = makeResult(4, 600, 400, {25, 25, 25, 25});
    // Mutator: 800 -> 200.
    EXPECT_DOUBLE_EQ(ScalabilityAnalyzer::mutatorSpeedup(base, fast),
                     4.0);
}

TEST(Analyzer, IsScalableThreshold)
{
    std::vector<jvm::RunResult> good = {makeResult(1, 1000, 0, {10}),
                                        makeResult(8, 200, 0, {10})};
    std::vector<jvm::RunResult> bad = {makeResult(1, 1000, 0, {10}),
                                       makeResult(8, 800, 0, {10})};
    EXPECT_TRUE(ScalabilityAnalyzer::isScalable(good));
    EXPECT_FALSE(ScalabilityAnalyzer::isScalable(bad));
}

TEST(Analyzer, EffectiveWorkersUniform)
{
    const auto r = makeResult(4, 100, 0, {25, 25, 25, 25});
    EXPECT_EQ(ScalabilityAnalyzer::effectiveWorkers(r, 0.90), 4u);
}

TEST(Analyzer, EffectiveWorkersConcentrated)
{
    // jython-like: 16 threads requested, 4 do all the work.
    std::vector<std::uint64_t> tasks(16, 0);
    tasks[0] = 30;
    tasks[1] = 28;
    tasks[2] = 26;
    tasks[3] = 24;
    const auto r = makeResult(16, 100, 0, tasks);
    EXPECT_EQ(ScalabilityAnalyzer::effectiveWorkers(r, 0.90), 4u);
    EXPECT_NEAR(ScalabilityAnalyzer::topThreadShare(r), 30.0 / 108.0,
                1e-9);
}

TEST(Analyzer, EffectiveWorkersZeroTasks)
{
    const auto r = makeResult(4, 100, 0, {0, 0, 0, 0});
    EXPECT_EQ(ScalabilityAnalyzer::effectiveWorkers(r), 0u);
    EXPECT_DOUBLE_EQ(ScalabilityAnalyzer::topThreadShare(r), 0.0);
}

TEST(Analyzer, TaskCvZeroWhenUniform)
{
    const auto r = makeResult(4, 100, 0, {10, 10, 10, 10});
    EXPECT_DOUBLE_EQ(ScalabilityAnalyzer::taskDistributionCv(r), 0.0);
}

TEST(Analyzer, TaskCvGrowsWithSkew)
{
    const auto uniform = makeResult(4, 100, 0, {10, 10, 10, 10});
    const auto skewed = makeResult(4, 100, 0, {40, 0, 0, 0});
    EXPECT_GT(ScalabilityAnalyzer::taskDistributionCv(skewed),
              ScalabilityAnalyzer::taskDistributionCv(uniform));
}

TEST(Analyzer, GcShare)
{
    const auto r = makeResult(4, 1000, 250, {1});
    EXPECT_DOUBLE_EQ(ScalabilityAnalyzer::gcShare(r), 0.25);
}

} // namespace
