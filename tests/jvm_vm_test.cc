/**
 * @file
 * Integration tests for the JavaVm facade: complete runs, time
 * accounting, GC triggering, OOM detection and misuse guards.
 */

#include <gtest/gtest.h>

#include "test_apps.hh"

namespace {

using namespace jscale;
using test::TinyApp;
using test::TinyAppParams;
using test::VmHarness;

TEST(JavaVm, RunsToCompletion)
{
    VmHarness h(4);
    TinyAppParams p;
    p.tasks_per_thread = 20;
    TinyApp app(p);
    const jvm::RunResult r = h.vm.run(app, 4);
    EXPECT_EQ(r.app_name, "tiny");
    EXPECT_EQ(r.threads, 4u);
    EXPECT_EQ(r.cores, 4u);
    EXPECT_GT(r.wall_time, 0u);
    EXPECT_EQ(r.total_tasks, 4u * 20u);
    EXPECT_EQ(r.wall_time, r.mutatorTime() + r.gc_time);
}

TEST(JavaVm, AllObjectsDieByShutdown)
{
    VmHarness h(2);
    TinyAppParams p;
    p.pinned = 64 * units::KiB;
    TinyApp app(p);
    const jvm::RunResult r = h.vm.run(app, 2);
    EXPECT_EQ(r.heap.objects_allocated, r.heap.objects_died);
    EXPECT_EQ(r.heap.bytes_allocated, r.heap.bytes_died);
}

TEST(JavaVm, GcTriggersWhenEdenFills)
{
    jvm::VmConfig cfg = VmHarness::defaultVmConfig();
    cfg.heap.capacity = 2 * units::MiB; // small: eden ~ 560 KiB
    VmHarness h(2, cfg);
    TinyAppParams p;
    p.tasks_per_thread = 200;
    p.allocs_per_task = 10;
    p.alloc_size = 1024;
    TinyApp app(p);
    const jvm::RunResult r = h.vm.run(app, 2);
    // 2 threads x 200 x 10 x 1 KiB = ~4 MiB allocated through a small
    // eden: several collections must have happened.
    EXPECT_GT(r.gc.minor_count, 2u);
    EXPECT_GT(r.gc_time, 0u);
    EXPECT_EQ(r.gc.events.size(),
              r.gc.minor_count);
    // Pause composition sane: ttsp <= pause, times ordered.
    for (const auto &ev : r.gc.events) {
        EXPECT_LE(ev.requested_at, ev.safepoint_at);
        EXPECT_LE(ev.safepoint_at, ev.finished_at);
    }
}

TEST(JavaVm, ThreadSummariesCoverAllThreads)
{
    VmHarness h(4);
    TinyAppParams p;
    TinyApp app(p);
    const jvm::RunResult r = h.vm.run(app, 3);
    std::size_t mutators = 0;
    for (const auto &ts : r.thread_summaries) {
        if (ts.kind == os::ThreadKind::Mutator) {
            ++mutators;
            EXPECT_EQ(ts.tasks_completed, p.tasks_per_thread);
            EXPECT_GT(ts.cpu_time, 0u);
        }
    }
    EXPECT_EQ(mutators, 3u);
}

TEST(JavaVm, HelperThreadsAppearWhenEnabled)
{
    jvm::VmConfig cfg = VmHarness::defaultVmConfig();
    cfg.enable_helpers = true;
    cfg.helpers.jit_threads = 2;
    VmHarness h(4, cfg);
    TinyAppParams p;
    TinyApp app(p);
    const jvm::RunResult r = h.vm.run(app, 2);
    std::size_t helpers = 0;
    for (const auto &ts : r.thread_summaries)
        helpers += ts.kind != os::ThreadKind::Mutator;
    EXPECT_EQ(helpers, 3u); // 2 JIT + periodic daemon
}

TEST(JavaVm, OutOfMemoryIsFatal)
{
    jvm::VmConfig cfg = VmHarness::defaultVmConfig();
    cfg.heap.capacity = 1 * units::MiB;
    TinyAppParams p;
    p.pinned = 2 * units::MiB; // cannot fit: old gen < 1 MiB
    p.tasks_per_thread = 2000;
    p.allocs_per_task = 4;
    EXPECT_EXIT({
        VmHarness h(2, cfg);
        TinyApp app(p);
        h.vm.run(app, 2);
    }, ::testing::ExitedWithCode(1), "OutOfMemoryError");
}

TEST(JavaVm, SecondRunIsRejected)
{
    VmHarness h(2);
    TinyAppParams p;
    TinyApp app(p);
    h.vm.run(app, 2);
    TinyApp app2(p);
    EXPECT_DEATH(h.vm.run(app2, 2), "exactly once");
}

TEST(JavaVm, GcListenerSeesStartAndEndInOrder)
{
    struct GcProbe : jvm::RuntimeListener
    {
        std::vector<std::pair<char, Ticks>> log;

        void
        onGcStart(jvm::GcKind, std::uint64_t, Ticks now) override
        {
            log.emplace_back('s', now);
        }

        void
        onGcEnd(const jvm::GcEvent &, Ticks now) override
        {
            log.emplace_back('e', now);
        }
    };
    jvm::VmConfig cfg = VmHarness::defaultVmConfig();
    cfg.heap.capacity = 2 * units::MiB;
    VmHarness h(2, cfg);
    GcProbe probe;
    h.vm.listeners().add(&probe);
    TinyAppParams p;
    p.tasks_per_thread = 200;
    p.allocs_per_task = 10;
    p.alloc_size = 1024;
    TinyApp app(p);
    h.vm.run(app, 2);
    ASSERT_GE(probe.log.size(), 2u);
    ASSERT_EQ(probe.log.size() % 2, 0u);
    for (std::size_t i = 0; i < probe.log.size(); i += 2) {
        EXPECT_EQ(probe.log[i].first, 's');
        EXPECT_EQ(probe.log[i + 1].first, 'e');
        EXPECT_LE(probe.log[i].second, probe.log[i + 1].second);
    }
}

TEST(JavaVm, MutatorTimeDropsWithMoreCores)
{
    TinyAppParams p;
    p.tasks_per_thread = 0; // per-thread work set below
    // Fixed total work split across threads: emulate by scaling
    // tasks_per_thread inversely.
    auto run = [&](std::uint32_t threads) {
        TinyAppParams q;
        q.tasks_per_thread = 240 / threads;
        q.compute_per_task = 50 * units::US;
        VmHarness h(threads);
        TinyApp app(q);
        return h.vm.run(app, threads);
    };
    const auto r1 = run(1);
    const auto r4 = run(4);
    const auto r8 = run(8);
    EXPECT_GT(r1.wall_time, r4.wall_time);
    EXPECT_GT(r4.wall_time, r8.wall_time);
}

TEST(JavaVm, CompartmentalizedModeRunsLocalGcs)
{
    jvm::VmConfig cfg = VmHarness::defaultVmConfig();
    cfg.heap.capacity = 2 * units::MiB;
    cfg.heap.compartmentalized = true;
    VmHarness h(4, cfg);
    TinyAppParams p;
    p.tasks_per_thread = 150;
    p.allocs_per_task = 10;
    p.alloc_size = 1024;
    TinyApp app(p);
    const jvm::RunResult r = h.vm.run(app, 4);
    EXPECT_GT(r.gc.local_count, 0u);
    EXPECT_GT(r.gc.local_pause, 0u);
    // Routine scavenging must not stop the world in this mode.
    EXPECT_EQ(r.gc.minor_count, 0u);
}

} // namespace
