/**
 * @file
 * Randomized property tests: generated applications with arbitrary (but
 * protocol-correct) interleavings of compute, allocation, locking and
 * channel use must always run to completion with all accounting
 * invariants intact, and must replay deterministically.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "test_apps.hh"

namespace {

using namespace jscale;

/**
 * A randomized application: each thread executes a random script of
 * balanced actions drawn from a seeded stream. Task volume and locking
 * vary per seed, covering interleavings hand-written tests never reach.
 */
class RandomApp : public jvm::ApplicationModel
{
  public:
    RandomApp(std::uint64_t seed, std::uint32_t monitors,
              std::uint32_t tasks)
        : seed_(seed), n_monitors_(monitors), tasks_(tasks)
    {}

    std::string appName() const override { return "random-app"; }

    void
    setup(jvm::AppContext &ctx) override
    {
        monitors_.clear();
        for (std::uint32_t i = 0; i < n_monitors_; ++i) {
            monitors_.push_back(
                ctx.createMonitor("m" + std::to_string(i)));
        }
        channel_ = ctx.createChannel("permits", /*permits=*/3);
    }

    std::unique_ptr<jvm::ActionSource>
    threadSource(std::uint32_t idx, jvm::AppContext &) override
    {
        return std::make_unique<Src>(*this, Rng(seed_ * 977 + idx));
    }

  private:
    class Src : public jvm::ActionSource
    {
      public:
        Src(const RandomApp &app, Rng rng)
        {
            using jvm::Action;
            // Pre-generate a balanced random script. Locks are always
            // acquired in ascending id order (no deadlocks) and
            // released before the next acquisition round.
            for (std::uint32_t t = 0; t < app.tasks_; ++t) {
                const int shape = static_cast<int>(rng.below(5));
                switch (shape) {
                  case 0: // pure compute
                    script_.push_back(Action::compute(
                        1 + rng.below(40 * units::US)));
                    break;
                  case 1: { // allocation burst
                    const int n = 1 + static_cast<int>(rng.below(8));
                    for (int i = 0; i < n; ++i) {
                        script_.push_back(Action::allocate(
                            16 + rng.below(2048), rng.below(16384)));
                    }
                    break;
                  }
                  case 2: { // nested ordered locks around work
                    const std::size_t first =
                        rng.below(app.monitors_.size());
                    const bool two =
                        rng.chance(0.4) &&
                        first + 1 < app.monitors_.size();
                    script_.push_back(
                        Action::monitorEnter(app.monitors_[first]));
                    if (two) {
                        script_.push_back(Action::monitorEnter(
                            app.monitors_[first + 1]));
                    }
                    script_.push_back(Action::compute(
                        1 + rng.below(4 * units::US)));
                    if (two) {
                        script_.push_back(Action::monitorExit(
                            app.monitors_[first + 1]));
                    }
                    script_.push_back(
                        Action::monitorExit(app.monitors_[first]));
                    break;
                  }
                  case 3: // channel round-trip (bounded: permits return)
                    script_.push_back(
                        Action::channelAcquire(app.channel_));
                    script_.push_back(Action::compute(
                        1 + rng.below(2 * units::US)));
                    script_.push_back(Action::channelPost(app.channel_));
                    break;
                  default: // pinned data
                    script_.push_back(Action::allocatePinned(
                        64 + rng.below(1024)));
                    break;
                }
                script_.push_back(Action::taskDone());
            }
            script_.push_back(Action::end());
        }

        jvm::Action
        next() override
        {
            return script_[pos_ < script_.size() ? pos_++
                                                 : script_.size() - 1];
        }

      private:
        std::vector<jvm::Action> script_;
        std::size_t pos_ = 0;
    };

    std::uint64_t seed_;
    std::uint32_t n_monitors_;
    std::uint32_t tasks_;
    std::vector<jvm::MonitorId> monitors_;
    jvm::ChannelId channel_ = 0;
};

/** Invariant-checking listener: mutual exclusion + heap consistency. */
struct InvariantProbe : jvm::RuntimeListener
{
    explicit InvariantProbe(test::VmHarness &h) : h(h) {}

    test::VmHarness &h;
    std::map<jvm::MonitorId, int> holders;
    bool mutex_ok = true;
    std::uint64_t gcs = 0;

    void
    onMonitorAcquire(jvm::MutatorIndex, jvm::MonitorId m, bool,
                     Ticks) override
    {
        mutex_ok &= ++holders[m] == 1;
    }

    void
    onMonitorRelease(jvm::MutatorIndex, jvm::MonitorId m, Ticks) override
    {
        mutex_ok &= --holders[m] == 0;
    }

    void
    onGcEnd(const jvm::GcEvent &, Ticks) override
    {
        ++gcs;
        h.vm.heap().checkInvariants();
    }
};

class FuzzVm : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FuzzVm, RandomAppRunsCleanlyWithInvariantsIntact)
{
    const std::uint64_t seed = GetParam();
    jvm::VmConfig cfg = test::VmHarness::defaultVmConfig();
    cfg.heap.capacity = 3 * units::MiB; // small: force collections
    cfg.enable_helpers = (seed % 2) == 0;
    test::VmHarness h(8, cfg, seed);
    InvariantProbe probe(h);
    h.vm.listeners().add(&probe);

    RandomApp app(seed, /*monitors=*/4, /*tasks=*/120);
    const jvm::RunResult r = h.vm.run(app, 8);

    EXPECT_TRUE(probe.mutex_ok) << "mutual exclusion violated";
    h.vm.heap().checkInvariants();
    EXPECT_EQ(r.total_tasks, 8u * 120u);
    EXPECT_EQ(r.heap.objects_allocated, r.heap.objects_died);
    EXPECT_EQ(r.wall_time, r.mutatorTime() + r.gc_time);
    // Lock accounting is internally consistent.
    EXPECT_EQ(r.locks.biased_acquisitions + r.locks.thin_acquisitions +
                  r.locks.fat_acquisitions,
              r.locks.acquisitions);
    EXPECT_LE(r.locks.contentions, r.locks.acquisitions);
}

TEST_P(FuzzVm, RandomAppReplaysDeterministically)
{
    const std::uint64_t seed = GetParam();
    auto run = [seed] {
        jvm::VmConfig cfg = test::VmHarness::defaultVmConfig();
        cfg.heap.capacity = 3 * units::MiB;
        test::VmHarness h(6, cfg, seed);
        RandomApp app(seed, 3, 80);
        return h.vm.run(app, 6);
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.wall_time, b.wall_time);
    EXPECT_EQ(a.sim_events, b.sim_events);
    EXPECT_EQ(a.gc.minor_count, b.gc.minor_count);
    EXPECT_EQ(a.locks.contentions, b.locks.contentions);
    EXPECT_EQ(a.heap.bytes_allocated, b.heap.bytes_allocated);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzVm,
                         ::testing::Values(1, 7, 13, 42, 99, 1234, 5678,
                                           271828, 314159, 999983));

TEST(FuzzVm, TlabModePreservesInvariants)
{
    for (const std::uint64_t seed : {3ULL, 17ULL, 51ULL}) {
        jvm::VmConfig cfg = test::VmHarness::defaultVmConfig();
        cfg.heap.capacity = 3 * units::MiB;
        cfg.heap.tlab_size = 8 * units::KiB;
        test::VmHarness h(8, cfg, seed);
        InvariantProbe probe(h);
        h.vm.listeners().add(&probe);
        RandomApp app(seed, 4, 100);
        const jvm::RunResult r = h.vm.run(app, 8);
        EXPECT_TRUE(probe.mutex_ok);
        h.vm.heap().checkInvariants();
        EXPECT_GT(r.heap.tlab_refills, 0u);
        // TLAB reservation rounds eden usage up: more GCs, never fewer
        // allocations.
        EXPECT_EQ(r.total_tasks, 8u * 100u);
    }
}

TEST(FuzzVm, CompartmentModePreservesInvariants)
{
    for (const std::uint64_t seed : {5ULL, 23ULL}) {
        jvm::VmConfig cfg = test::VmHarness::defaultVmConfig();
        cfg.heap.capacity = 4 * units::MiB;
        cfg.heap.compartmentalized = true;
        test::VmHarness h(8, cfg, seed);
        RandomApp app(seed, 4, 100);
        const jvm::RunResult r = h.vm.run(app, 8);
        h.vm.heap().checkInvariants();
        EXPECT_EQ(r.total_tasks, 8u * 100u);
        EXPECT_EQ(r.heap.objects_allocated, r.heap.objects_died);
    }
}

} // namespace
