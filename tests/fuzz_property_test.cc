/**
 * @file
 * Randomized property tests: generated applications with arbitrary (but
 * protocol-correct) interleavings of compute, allocation, locking and
 * channel use must always run to completion with all accounting
 * invariants intact, and must replay deterministically.
 *
 * The generator itself (check::RandomApp) is shared with the fuzz
 * driver (`jscale fuzz`), so every shape these tests cover is also
 * exercised under the full oracle suite with fault injection.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "check/random_app.hh"
#include "test_apps.hh"

namespace {

using namespace jscale;
using check::RandomApp;

/** Invariant-checking listener: mutual exclusion + heap consistency. */
struct InvariantProbe : jvm::RuntimeListener
{
    explicit InvariantProbe(test::VmHarness &h) : h(h) {}

    test::VmHarness &h;
    std::map<jvm::MonitorId, int> holders;
    bool mutex_ok = true;
    std::uint64_t gcs = 0;

    void
    onMonitorAcquire(jvm::MutatorIndex, jvm::MonitorId m, bool,
                     Ticks) override
    {
        mutex_ok &= ++holders[m] == 1;
    }

    void
    onMonitorRelease(jvm::MutatorIndex, jvm::MonitorId m, Ticks) override
    {
        mutex_ok &= --holders[m] == 0;
    }

    void
    onGcEnd(const jvm::GcEvent &, Ticks) override
    {
        ++gcs;
        h.vm.heap().checkInvariants();
    }
};

class FuzzVm : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FuzzVm, RandomAppRunsCleanlyWithInvariantsIntact)
{
    const std::uint64_t seed = GetParam();
    jvm::VmConfig cfg = test::VmHarness::defaultVmConfig();
    cfg.heap.capacity = 3 * units::MiB; // small: force collections
    cfg.enable_helpers = (seed % 2) == 0;
    test::VmHarness h(8, cfg, seed);
    InvariantProbe probe(h);
    h.vm.listeners().add(&probe);

    RandomApp app(seed, /*monitors=*/4, /*tasks=*/120);
    const jvm::RunResult r = h.vm.run(app, 8);

    EXPECT_TRUE(probe.mutex_ok) << "mutual exclusion violated";
    h.vm.heap().checkInvariants();
    EXPECT_EQ(r.total_tasks, 8u * 120u);
    EXPECT_EQ(r.heap.objects_allocated, r.heap.objects_died);
    EXPECT_EQ(r.wall_time, r.mutatorTime() + r.gc_time);
    // Lock accounting is internally consistent.
    EXPECT_EQ(r.locks.biased_acquisitions + r.locks.thin_acquisitions +
                  r.locks.fat_acquisitions,
              r.locks.acquisitions);
    EXPECT_LE(r.locks.contentions, r.locks.acquisitions);
}

TEST_P(FuzzVm, RandomAppReplaysDeterministically)
{
    const std::uint64_t seed = GetParam();
    auto run = [seed] {
        jvm::VmConfig cfg = test::VmHarness::defaultVmConfig();
        cfg.heap.capacity = 3 * units::MiB;
        test::VmHarness h(6, cfg, seed);
        RandomApp app(seed, 3, 80);
        return h.vm.run(app, 6);
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.wall_time, b.wall_time);
    EXPECT_EQ(a.sim_events, b.sim_events);
    EXPECT_EQ(a.gc.minor_count, b.gc.minor_count);
    EXPECT_EQ(a.locks.contentions, b.locks.contentions);
    EXPECT_EQ(a.heap.bytes_allocated, b.heap.bytes_allocated);
}

// A dense low-seed sweep plus a handful of large, structurally
// unrelated seeds. The dense range catches off-by-one degeneracies in
// the generator's seed mixing that sparse hand-picked values miss.
INSTANTIATE_TEST_SUITE_P(Seeds, FuzzVm,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{33}));
INSTANTIATE_TEST_SUITE_P(LargeSeeds, FuzzVm,
                         ::testing::Values(1234, 5678, 271828, 314159,
                                           999983));

TEST(FuzzVm, TlabModePreservesInvariants)
{
    for (const std::uint64_t seed : {3ULL, 17ULL, 51ULL}) {
        jvm::VmConfig cfg = test::VmHarness::defaultVmConfig();
        cfg.heap.capacity = 3 * units::MiB;
        cfg.heap.tlab_size = 8 * units::KiB;
        test::VmHarness h(8, cfg, seed);
        InvariantProbe probe(h);
        h.vm.listeners().add(&probe);
        RandomApp app(seed, 4, 100);
        const jvm::RunResult r = h.vm.run(app, 8);
        EXPECT_TRUE(probe.mutex_ok);
        h.vm.heap().checkInvariants();
        EXPECT_GT(r.heap.tlab_refills, 0u);
        // TLAB reservation rounds eden usage up: more GCs, never fewer
        // allocations.
        EXPECT_EQ(r.total_tasks, 8u * 100u);
    }
}

TEST(FuzzVm, CompartmentModePreservesInvariants)
{
    for (const std::uint64_t seed : {5ULL, 23ULL}) {
        jvm::VmConfig cfg = test::VmHarness::defaultVmConfig();
        cfg.heap.capacity = 4 * units::MiB;
        cfg.heap.compartmentalized = true;
        test::VmHarness h(8, cfg, seed);
        RandomApp app(seed, 4, 100);
        const jvm::RunResult r = h.vm.run(app, 8);
        h.vm.heap().checkInvariants();
        EXPECT_EQ(r.total_tasks, 8u * 100u);
        EXPECT_EQ(r.heap.objects_allocated, r.heap.objects_died);
    }
}

} // namespace
