/**
 * @file
 * Fault-injection integration tests: injected faults are visible in the
 * run's counters, runs degrade gracefully instead of wedging, faulted
 * sweeps stay byte-identical at any host parallelism, and the
 * concurrency governor re-targets after capacity loss.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "base/units.hh"
#include "control/governor.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "fault/fault.hh"

namespace {

using namespace jscale;

core::ExperimentConfig
faultedCfg(const std::string &spec, double scale = 0.05)
{
    core::ExperimentConfig cfg;
    cfg.workload_scale = scale;
    std::string err;
    if (!fault::FaultPlan::parse(spec, cfg.faults, err))
        ADD_FAILURE() << "bad test fault spec: " << err;
    return cfg;
}

std::string
snapshotText(const jvm::RunResult &r)
{
    std::ostringstream os;
    core::runStatSnapshot(r).print(os);
    return os.str();
}

TEST(FaultInjection, CoreOfflineMigratesAndRecovers)
{
    // Two cores go away at 2 ms and return at 7 ms; the scheduler must
    // migrate the displaced threads and the run must complete the same
    // amount of work as the unfaulted baseline (no kills involved).
    core::ExperimentRunner clean(faultedCfg(""));
    const jvm::RunResult base = clean.runApp("xalan", 8);

    core::ExperimentRunner faulted(faultedCfg("coreoff@2:n=2:for=5"));
    const jvm::RunResult r = faulted.runApp("xalan", 8);

    EXPECT_EQ(r.faults.cores_offlined, 2u);
    EXPECT_EQ(r.faults.cores_onlined, 2u);
    EXPECT_GE(r.faults.injections, 1u);
    EXPECT_GE(r.faults.recoveries, 1u);
    // Eight threads time-share six cores while the fault holds: the
    // displaced threads keep running (extra context switches), and the
    // run still completes exactly the baseline amount of work.
    EXPECT_GT(r.sched.context_switches, base.sched.context_switches);
    EXPECT_EQ(r.total_tasks, base.total_tasks);
    EXPECT_GT(r.wall_time, 0u);
}

TEST(FaultInjection, MutatorKillIsCountedAndRunCompletes)
{
    core::ExperimentRunner runner(faultedCfg("kill@3:n=2"));
    const jvm::RunResult r = runner.runApp("xalan", 4);
    EXPECT_EQ(r.faults.mutators_killed, 2u);
    EXPECT_TRUE(r.faults.any());
    EXPECT_GT(r.total_tasks, 0u);
    EXPECT_GT(r.wall_time, 0u);
    EXPECT_FALSE(r.failed());
}

TEST(FaultInjection, KillNeverTakesTheLastMutator)
{
    // Asking for more kills than threads: the injector must leave at
    // least one mutator alive so the run can still finish.
    core::ExperimentRunner runner(faultedCfg("kill@2:n=8"));
    const jvm::RunResult r = runner.runApp("sunflow", 2);
    EXPECT_LE(r.faults.mutators_killed, 1u);
    EXPECT_GT(r.total_tasks, 0u);
    EXPECT_FALSE(r.failed());
}

TEST(FaultInjection, TransientFaultsAllRegisterAndRecover)
{
    core::ExperimentRunner runner(faultedCfg(
        "slow@1:n=2:factor=0.5:for=2,stall@1:n=1:for=1,"
        "heap@1:mb=2:for=2,gcworkers@1:n=1:for=2,"
        "preempt@2:n=2:every=0.5:for=0.2"));
    const jvm::RunResult r = runner.runApp("lusearch", 8);
    EXPECT_GE(r.faults.slowdowns, 1u);
    EXPECT_GE(r.faults.mutators_stalled, 1u);
    EXPECT_GE(r.faults.heap_spikes, 1u);
    EXPECT_GE(r.faults.gc_worker_losses, 1u);
    EXPECT_GE(r.faults.preempt_bursts, 1u);
    EXPECT_GE(r.faults.recoveries, 3u);
    EXPECT_GT(r.total_tasks, 0u);
    EXPECT_FALSE(r.failed());
}

TEST(FaultInjection, FaultedSweepByteIdenticalAcrossJobs)
{
    const std::string spec =
        "slow@1:n=2:factor=0.5:for=3,coreoff@2:n=1:for=4,"
        "stall@2:for=2,heap@1:mb=2:for=3,kill@4";
    const std::vector<std::uint32_t> threads = {2, 4, 8};

    auto capture = [&](std::uint32_t jobs) {
        core::ExperimentConfig cfg = faultedCfg(spec);
        cfg.jobs = jobs;
        core::ExperimentRunner runner(cfg);
        std::vector<std::string> out;
        for (const auto &r : runner.sweep("xalan", threads))
            out.push_back(snapshotText(r));
        return out;
    };
    const auto sequential = capture(1);
    const auto parallel = capture(8);
    ASSERT_EQ(sequential.size(), parallel.size());
    for (std::size_t i = 0; i < sequential.size(); ++i)
        EXPECT_EQ(sequential[i], parallel[i]) << "point " << i;
}

TEST(FaultInjection, IntensityPlanIsDeterministicAcrossRuns)
{
    // Short horizon so the generated schedule lands inside a 0.05-scale
    // run (the 300 ms default assumes full-scale workloads).
    core::ExperimentConfig cfg =
        faultedCfg("intensity=0.5:seed=9:horizon=5");
    core::ExperimentRunner a(cfg);
    core::ExperimentRunner b(cfg);
    const auto ra = a.runApp("h2", 8);
    const auto rb = b.runApp("h2", 8);
    EXPECT_EQ(snapshotText(ra), snapshotText(rb));
    EXPECT_TRUE(ra.faults.any());
}

TEST(FaultGovernor, GovernorRetargetsAfterCapacityLoss)
{
    // Half the enabled cores go away for good at 3 ms. The governor's
    // capacity clamp must pull the admission target at or below the
    // surviving core count.
    core::ExperimentConfig cfg = faultedCfg("coreoff@3:n=8");
    cfg.governor.mode = control::GovernorMode::HillClimb;
    cfg.governor.interval = 1 * units::MS;
    core::ExperimentRunner runner(cfg);
    const jvm::RunResult r = runner.runApp("h2", 16);

    EXPECT_TRUE(r.governor.enabled);
    EXPECT_EQ(r.faults.cores_offlined, 8u);
    EXPECT_LE(r.governor.final_target, 8u);
    // Parking stays balanced: nobody is left parked at run end.
    EXPECT_EQ(r.governor.parks, r.governor.unparks);
    EXPECT_FALSE(r.failed());
}

TEST(FaultGovernor, LastRunnableMutatorNeverParkedWithCoresOffline)
{
    // Two threads, one core gone permanently, aggressive governor: the
    // admission floor must keep at least one mutator runnable so the
    // run finishes.
    core::ExperimentConfig cfg = faultedCfg("coreoff@1:n=1");
    cfg.governor.mode = control::GovernorMode::HillClimb;
    cfg.governor.interval = 1 * units::MS;
    core::ExperimentRunner runner(cfg);
    const jvm::RunResult r = runner.runApp("sunflow", 2);

    EXPECT_GE(r.governor.min_target, 1u);
    EXPECT_EQ(r.governor.parks, r.governor.unparks);
    EXPECT_GT(r.total_tasks, 0u);
    EXPECT_FALSE(r.failed());
}

TEST(FaultGovernor, GovernedFaultedSweepByteIdenticalAcrossJobs)
{
    auto capture = [](std::uint32_t jobs) {
        core::ExperimentConfig cfg =
            faultedCfg("coreoff@2:n=2:for=4,slow@1:factor=0.5:for=3");
        cfg.governor.mode = control::GovernorMode::HillClimb;
        cfg.governor.interval = 1 * units::MS;
        cfg.jobs = jobs;
        core::ExperimentRunner runner(cfg);
        std::vector<std::string> out;
        for (const auto &r : runner.sweep("jython", {4, 8}))
            out.push_back(snapshotText(r));
        return out;
    };
    const auto sequential = capture(1);
    const auto parallel = capture(4);
    ASSERT_EQ(sequential.size(), parallel.size());
    for (std::size_t i = 0; i < sequential.size(); ++i)
        EXPECT_EQ(sequential[i], parallel[i]) << "point " << i;
}

} // namespace
