/**
 * @file
 * Tests for the statistics package: running summaries, log-bucket
 * histograms and stat snapshots.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "base/random.hh"
#include "stats/stats.hh"

namespace {

using jscale::Rng;
using namespace jscale::stats;

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(5);
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(SampleStats, EmptyIsSafe)
{
    SampleStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(SampleStats, MatchesNaiveComputation)
{
    Rng rng(21);
    std::vector<double> xs;
    SampleStats s;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(-50.0, 150.0);
        xs.push_back(x);
        s.add(x);
    }
    double sum = 0.0;
    for (const double x : xs)
        sum += x;
    const double mean = sum / xs.size();
    double var = 0.0;
    for (const double x : xs)
        var += (x - mean) * (x - mean);
    var /= xs.size() - 1;

    EXPECT_NEAR(s.mean(), mean, 1e-9);
    EXPECT_NEAR(s.variance(), var, 1e-6);
    EXPECT_EQ(s.count(), xs.size());
    EXPECT_DOUBLE_EQ(s.min(), *std::min_element(xs.begin(), xs.end()));
    EXPECT_DOUBLE_EQ(s.max(), *std::max_element(xs.begin(), xs.end()));
}

TEST(SampleStats, SingleSample)
{
    SampleStats s;
    s.add(7.0);
    EXPECT_DOUBLE_EQ(s.mean(), 7.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 7.0);
    EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(LogHistogram, BucketIndexing)
{
    EXPECT_EQ(LogHistogram::bucketIndex(0), 0u);
    EXPECT_EQ(LogHistogram::bucketIndex(1), 1u);
    EXPECT_EQ(LogHistogram::bucketIndex(2), 2u);
    EXPECT_EQ(LogHistogram::bucketIndex(3), 2u);
    EXPECT_EQ(LogHistogram::bucketIndex(4), 3u);
    EXPECT_EQ(LogHistogram::bucketIndex(1023), 10u);
    EXPECT_EQ(LogHistogram::bucketIndex(1024), 11u);
}

TEST(LogHistogram, FractionBelowExactAtPowerOfTwoEdges)
{
    LogHistogram h;
    // 4 values below 64, 6 values in [64, 128).
    for (int i = 0; i < 4; ++i)
        h.add(10);
    for (int i = 0; i < 6; ++i)
        h.add(100);
    EXPECT_DOUBLE_EQ(h.fractionBelow(64), 0.4);
    EXPECT_DOUBLE_EQ(h.fractionBelow(128), 1.0);
    EXPECT_DOUBLE_EQ(h.fractionBelow(1), 0.0);
}

TEST(LogHistogram, FractionBelowInterpolatesWithinBucket)
{
    LogHistogram h;
    h.add(100); // bucket [64, 128)
    const double f96 = h.fractionBelow(96); // midpoint
    EXPECT_NEAR(f96, 0.5, 1e-9);
}

TEST(LogHistogram, FractionBelowMonotone)
{
    LogHistogram h;
    Rng rng(22);
    for (int i = 0; i < 10000; ++i)
        h.add(rng.below(1 << 20));
    double prev = 0.0;
    for (std::uint64_t t = 1; t < (1 << 20); t *= 2) {
        const double f = h.fractionBelow(t);
        EXPECT_GE(f, prev);
        prev = f;
    }
    EXPECT_DOUBLE_EQ(h.fractionBelow(1ULL << 21), 1.0);
}

TEST(LogHistogram, PercentileRoundTripApproximate)
{
    LogHistogram h;
    Rng rng(23);
    for (int i = 0; i < 200000; ++i)
        h.add(rng.below(4096));
    // The p-quantile of U[0,4096) is p*4096; log buckets give us the
    // right bucket plus linear interpolation.
    for (const double p : {0.1, 0.5, 0.9}) {
        const auto q = static_cast<double>(h.percentile(p));
        EXPECT_NEAR(q, p * 4096, 4096 * 0.25);
    }
}

TEST(LogHistogram, WeightsAndMerge)
{
    LogHistogram a;
    LogHistogram b;
    a.add(10, 3);
    b.add(1000, 7);
    a.merge(b);
    EXPECT_EQ(a.totalWeight(), 10u);
    EXPECT_DOUBLE_EQ(a.fractionBelow(512), 0.3);
}

TEST(LogHistogram, ZeroValuesLandInBucketZero)
{
    LogHistogram h;
    h.add(0);
    h.add(0);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_DOUBLE_EQ(h.fractionBelow(1), 1.0);
}

TEST(LogHistogram, CdfVectorMatchesPointQueries)
{
    LogHistogram h;
    Rng rng(24);
    for (int i = 0; i < 5000; ++i)
        h.add(rng.below(100000));
    const std::vector<std::uint64_t> thresholds = {64, 1024, 65536};
    const auto cdf = h.cdf(thresholds);
    ASSERT_EQ(cdf.size(), 3u);
    for (std::size_t i = 0; i < thresholds.size(); ++i)
        EXPECT_DOUBLE_EQ(cdf[i], h.fractionBelow(thresholds[i]));
}

TEST(StatSnapshot, AddGetHas)
{
    StatSnapshot s;
    s.add("a.b", 2.5, "ms");
    EXPECT_TRUE(s.has("a.b"));
    EXPECT_FALSE(s.has("a.c"));
    EXPECT_DOUBLE_EQ(s.get("a.b"), 2.5);
    EXPECT_TRUE(std::isnan(s.get("missing")));
}

TEST(StatSnapshot, SummaryExpansion)
{
    StatSnapshot s;
    SampleStats st;
    st.add(1.0);
    st.add(3.0);
    s.addSummary("pause", st, "ns");
    EXPECT_DOUBLE_EQ(s.get("pause.count"), 2.0);
    EXPECT_DOUBLE_EQ(s.get("pause.mean"), 2.0);
    EXPECT_DOUBLE_EQ(s.get("pause.min"), 1.0);
    EXPECT_DOUBLE_EQ(s.get("pause.max"), 3.0);
}

TEST(StatSnapshot, PrintAndCsv)
{
    StatSnapshot s;
    s.add("x", 1.0, "count");
    std::ostringstream text;
    s.print(text);
    EXPECT_NE(text.str().find("x"), std::string::npos);
    std::ostringstream csv;
    s.printCsv(csv);
    EXPECT_NE(csv.str().find("stat,value,unit"), std::string::npos);
}

} // namespace
