/**
 * @file
 * Tiny configurable application models and a VM harness for tests.
 */

#ifndef JSCALE_TESTS_TEST_APPS_HH
#define JSCALE_TESTS_TEST_APPS_HH

#include <memory>
#include <string>
#include <vector>

#include "jvm/runtime/app.hh"
#include "jvm/runtime/vm.hh"
#include "machine/machine.hh"
#include "os/scheduler.hh"
#include "sim/simulation.hh"

namespace jscale::test {

/** Behaviour knobs for TinyApp threads. */
struct TinyAppParams
{
    std::string name = "tiny";
    /** Actions per thread: repetitions of the per-task pattern. */
    std::uint32_t tasks_per_thread = 10;
    Ticks compute_per_task = 10 * units::US;
    /** Allocations per task (fixed size/ttl below). */
    std::uint32_t allocs_per_task = 2;
    Bytes alloc_size = 128;
    Bytes alloc_ttl = 512;
    /** If >= 0, each task takes this shared monitor once. */
    std::int32_t use_shared_lock = -1; // -1 off; >=0: cs compute ns
    /** Pinned bytes allocated by thread 0 at startup. */
    Bytes pinned = 0;
};

/** Deterministic scripted application for unit/integration tests. */
class TinyApp : public jvm::ApplicationModel
{
  public:
    explicit TinyApp(TinyAppParams params) : params_(params) {}

    std::string appName() const override { return params_.name; }

    void
    setup(jvm::AppContext &ctx) override
    {
        if (params_.use_shared_lock >= 0)
            lock_ = ctx.createMonitor(params_.name + ".lock");
    }

    std::unique_ptr<jvm::ActionSource>
    threadSource(std::uint32_t thread_idx, jvm::AppContext &) override
    {
        return std::make_unique<Source>(params_, lock_, thread_idx);
    }

  private:
    class Source : public jvm::ActionSource
    {
      public:
        Source(const TinyAppParams &p, jvm::MonitorId lock,
               std::uint32_t idx)
            : p_(p), lock_(lock), idx_(idx)
        {
            if (idx_ == 0 && p_.pinned > 0)
                script_.push_back(jvm::Action::allocatePinned(p_.pinned));
            for (std::uint32_t t = 0; t < p_.tasks_per_thread; ++t) {
                script_.push_back(
                    jvm::Action::compute(p_.compute_per_task));
                for (std::uint32_t a = 0; a < p_.allocs_per_task; ++a) {
                    script_.push_back(jvm::Action::allocate(
                        p_.alloc_size, p_.alloc_ttl));
                }
                if (p_.use_shared_lock >= 0) {
                    script_.push_back(jvm::Action::monitorEnter(lock_));
                    script_.push_back(jvm::Action::compute(
                        std::max<Ticks>(p_.use_shared_lock, 1)));
                    script_.push_back(jvm::Action::monitorExit(lock_));
                }
                script_.push_back(jvm::Action::taskDone());
            }
            script_.push_back(jvm::Action::end());
        }

        jvm::Action
        next() override
        {
            return script_[pos_ < script_.size() ? pos_++
                                                 : script_.size() - 1];
        }

      private:
        TinyAppParams p_;
        jvm::MonitorId lock_;
        std::uint32_t idx_;
        std::vector<jvm::Action> script_;
        std::size_t pos_ = 0;
    };

    TinyAppParams params_;
    jvm::MonitorId lock_ = 0;
};

/** One-shot VM harness on the small test machine. */
struct VmHarness
{
    explicit VmHarness(std::uint32_t cores,
                       jvm::VmConfig vm_cfg = defaultVmConfig(),
                       std::uint64_t seed = 1)
        : sim(seed), mach(machine::Machine::testMachine_2p8c()),
          sched((mach.enableCores(cores), sim), mach),
          vm(sim, mach, sched, vm_cfg)
    {}

    static jvm::VmConfig
    defaultVmConfig()
    {
        jvm::VmConfig cfg;
        cfg.heap.capacity = 8 * units::MiB;
        cfg.enable_helpers = false; // deterministic minimal runs
        return cfg;
    }

    sim::Simulation sim;
    machine::Machine mach;
    os::Scheduler sched;
    jvm::JavaVm vm;
};

} // namespace jscale::test

#endif // JSCALE_TESTS_TEST_APPS_HH
