/**
 * @file
 * Checkpoint/resume tests: the CheckpointStore ledger itself, and the
 * experiment harness skipping completed runs on --resume while a
 * changed configuration (fingerprint mismatch) starts fresh.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/checkpoint.hh"
#include "core/experiment.hh"

namespace {

using namespace jscale;

class CheckpointTest : public ::testing::Test
{
  protected:
    void SetUp() override { std::filesystem::remove(path_); }
    void TearDown() override { std::filesystem::remove(path_); }

    const std::string path_ = "checkpoint_test.ledger";
};

TEST_F(CheckpointTest, RecordedKeysSurviveReload)
{
    {
        core::CheckpointStore store(path_, "fp-1");
        EXPECT_EQ(store.load(), 0u);
        store.record("xalan|t4|s1");
        store.record("xalan|t8|s2");
        store.record("xalan|t4|s1"); // duplicate is a no-op
        EXPECT_EQ(store.size(), 2u);
    }
    core::CheckpointStore reloaded(path_, "fp-1");
    EXPECT_EQ(reloaded.load(), 2u);
    EXPECT_TRUE(reloaded.completed("xalan|t4|s1"));
    EXPECT_TRUE(reloaded.completed("xalan|t8|s2"));
    EXPECT_FALSE(reloaded.completed("xalan|t16|s3"));
}

TEST_F(CheckpointTest, FingerprintMismatchStartsFresh)
{
    {
        core::CheckpointStore store(path_, "fp-1");
        store.load();
        store.record("xalan|t4|s1");
    }
    core::CheckpointStore other(path_, "fp-2");
    EXPECT_EQ(other.load(), 0u);
    EXPECT_FALSE(other.completed("xalan|t4|s1"));
    // Recording under the new fingerprint rewrites the ledger.
    other.record("h2|t2|s9");
    core::CheckpointStore reread(path_, "fp-2");
    EXPECT_EQ(reread.load(), 1u);
    EXPECT_TRUE(reread.completed("h2|t2|s9"));
}

TEST_F(CheckpointTest, MissingFileLoadsEmpty)
{
    core::CheckpointStore store(path_, "fp-1");
    EXPECT_EQ(store.load(), 0u);
    EXPECT_EQ(store.size(), 0u);
}

TEST_F(CheckpointTest, TornTrailingEntryIsDroppedNotFatal)
{
    {
        core::CheckpointStore store(path_, "fp-1");
        store.load();
        store.record("xalan|t4|s1");
        store.record("xalan|t8|s1");
    }
    // Simulate a writer SIGKILLed mid-append: a final entry with no
    // terminating newline.
    {
        std::ofstream out(path_, std::ios::app | std::ios::binary);
        out << "xalan|t16|s1"; // no '\n'
    }
    core::CheckpointStore reloaded(path_, "fp-1");
    EXPECT_EQ(reloaded.load(), 2u);
    EXPECT_TRUE(reloaded.completed("xalan|t4|s1"));
    EXPECT_TRUE(reloaded.completed("xalan|t8|s1"));
    // The torn key re-executes rather than being trusted.
    EXPECT_FALSE(reloaded.completed("xalan|t16|s1"));
}

TEST_F(CheckpointTest, GarbageLinesAreSkippedNotFatal)
{
    {
        core::CheckpointStore store(path_, "fp-1");
        store.load();
        store.record("h2|t2|s1");
    }
    {
        std::ofstream out(path_, std::ios::app | std::ios::binary);
        out << "\x01\x02\xffscribble\n"; // disk corruption
        out << "h2|t8|s1\n";             // valid entry after the junk
    }
    core::CheckpointStore reloaded(path_, "fp-1");
    EXPECT_EQ(reloaded.load(), 2u);
    EXPECT_TRUE(reloaded.completed("h2|t2|s1"));
    EXPECT_TRUE(reloaded.completed("h2|t8|s1"));
}

TEST_F(CheckpointTest, RecordingAfterCorruptionRewritesCleanLedger)
{
    {
        core::CheckpointStore store(path_, "fp-1");
        store.load();
        store.record("h2|t2|s1");
    }
    {
        std::ofstream out(path_, std::ios::app | std::ios::binary);
        out << "\x01garbage\n";
        out << "h2|t4|s1"; // torn tail, too
    }
    {
        core::CheckpointStore store(path_, "fp-1");
        EXPECT_EQ(store.load(), 1u);
        store.record("h2|t8|s1"); // triggers the clean rewrite
    }
    // The rewritten ledger parses with no warnings: every surviving key
    // present, the garbage and the torn tail gone for good.
    std::ifstream in(path_, std::ios::binary);
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line))
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 3u); // header + 2 keys
    core::CheckpointStore reread(path_, "fp-1");
    EXPECT_EQ(reread.load(), 2u);
    EXPECT_TRUE(reread.completed("h2|t2|s1"));
    EXPECT_TRUE(reread.completed("h2|t8|s1"));
    EXPECT_FALSE(reread.completed("h2|t4|s1"));
}

core::ExperimentConfig
checkpointedCfg(const std::string &path, bool resume)
{
    core::ExperimentConfig cfg;
    cfg.workload_scale = 0.05;
    cfg.heap_override = 32 * units::MiB; // calibration-free, faster
    cfg.checkpoint_path = path;
    cfg.resume = resume;
    return cfg;
}

TEST_F(CheckpointTest, ResumeSkipsCompletedRuns)
{
    // First campaign: both points run and are recorded.
    {
        core::ExperimentRunner runner(checkpointedCfg(path_, false));
        const auto results = runner.sweep("sunflow", {2, 4});
        ASSERT_EQ(results.size(), 2u);
        for (const auto &r : results) {
            EXPECT_FALSE(r.skipped);
            EXPECT_GT(r.total_tasks, 0u);
        }
    }
    // Second campaign, same configuration, --resume: both are skipped.
    {
        core::ExperimentRunner runner(checkpointedCfg(path_, true));
        const auto results = runner.sweep("sunflow", {2, 4});
        ASSERT_EQ(results.size(), 2u);
        for (const auto &r : results) {
            EXPECT_TRUE(r.skipped);
            EXPECT_EQ(r.app_name, "sunflow");
            EXPECT_FALSE(r.failed());
        }
        EXPECT_EQ(results[0].threads, 2u);
        EXPECT_EQ(results[1].threads, 4u);
    }
    // A new point in the same campaign still runs.
    {
        core::ExperimentRunner runner(checkpointedCfg(path_, true));
        const auto results = runner.sweep("sunflow", {2, 8});
        ASSERT_EQ(results.size(), 2u);
        EXPECT_TRUE(results[0].skipped);
        EXPECT_FALSE(results[1].skipped);
        EXPECT_GT(results[1].total_tasks, 0u);
    }
}

TEST_F(CheckpointTest, ChangedSeedInvalidatesTheLedger)
{
    {
        core::ExperimentRunner runner(checkpointedCfg(path_, false));
        runner.sweep("sunflow", {2});
    }
    core::ExperimentConfig cfg = checkpointedCfg(path_, true);
    cfg.seed = 4711; // different campaign fingerprint
    core::ExperimentRunner runner(cfg);
    const auto results = runner.sweep("sunflow", {2});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].skipped);
    EXPECT_GT(results[0].total_tasks, 0u);
}

TEST_F(CheckpointTest, WithoutResumeTheLedgerOnlyRecords)
{
    {
        core::ExperimentRunner runner(checkpointedCfg(path_, false));
        runner.sweep("sunflow", {2});
    }
    // resume=false: runs execute again even though they are recorded.
    core::ExperimentRunner runner(checkpointedCfg(path_, false));
    const auto results = runner.sweep("sunflow", {2});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].skipped);
    EXPECT_GT(results[0].total_tasks, 0u);
}

} // namespace
