/**
 * @file
 * Unit tests for the probe-chain plumbing: jvm::ListenerChain and
 * os::SchedListenerChain subscription, removal and dispatch order.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "jvm/runtime/listener.hh"
#include "os/sched_listener.hh"

namespace {

using namespace jscale;

/** Listener that logs its identity on every thread-start event. */
struct TaggedListener : jvm::RuntimeListener
{
    TaggedListener(std::string tag, std::vector<std::string> &log)
        : tag(std::move(tag)), log(log)
    {}

    void
    onThreadStart(jvm::MutatorIndex, Ticks) override
    {
        log.push_back(tag);
    }

    std::string tag;
    std::vector<std::string> &log;
};

TEST(ListenerChain, DispatchesInSubscriptionOrder)
{
    std::vector<std::string> log;
    TaggedListener a("a", log);
    TaggedListener b("b", log);
    TaggedListener c("c", log);
    jvm::ListenerChain chain;
    chain.add(&b);
    chain.add(&a);
    chain.add(&c);
    chain.dispatch(
        [](jvm::RuntimeListener &l) { l.onThreadStart(0, 0); });
    EXPECT_EQ(log, (std::vector<std::string>{"b", "a", "c"}));
}

TEST(ListenerChain, RemoveUnsubscribesOnlyTheTarget)
{
    std::vector<std::string> log;
    TaggedListener a("a", log);
    TaggedListener b("b", log);
    jvm::ListenerChain chain;
    chain.add(&a);
    chain.add(&b);
    ASSERT_EQ(chain.all().size(), 2u);

    chain.remove(&a);
    EXPECT_EQ(chain.all().size(), 1u);
    chain.dispatch(
        [](jvm::RuntimeListener &l) { l.onThreadStart(0, 0); });
    EXPECT_EQ(log, (std::vector<std::string>{"b"}));
}

TEST(ListenerChain, RemoveOfNeverSubscribedListenerIsANoOp)
{
    std::vector<std::string> log;
    TaggedListener a("a", log);
    TaggedListener stranger("s", log);
    jvm::ListenerChain chain;
    chain.add(&a);
    chain.remove(&stranger);
    EXPECT_EQ(chain.all().size(), 1u);
    chain.dispatch(
        [](jvm::RuntimeListener &l) { l.onThreadStart(0, 0); });
    EXPECT_EQ(log, (std::vector<std::string>{"a"}));
}

TEST(ListenerChain, RemoveFromEmptyChainIsANoOp)
{
    std::vector<std::string> log;
    TaggedListener a("a", log);
    jvm::ListenerChain chain;
    chain.remove(&a);
    EXPECT_TRUE(chain.all().empty());
}

TEST(ListenerChain, ResubscribeAfterRemoveWorks)
{
    std::vector<std::string> log;
    TaggedListener a("a", log);
    jvm::ListenerChain chain;
    chain.add(&a);
    chain.remove(&a);
    chain.add(&a);
    chain.dispatch(
        [](jvm::RuntimeListener &l) { l.onThreadStart(0, 0); });
    EXPECT_EQ(log, (std::vector<std::string>{"a"}));
}

/** Scheduler-side listener logging world-stop events. */
struct StopLogger : os::SchedulerListener
{
    StopLogger(std::string tag, std::vector<std::string> &log)
        : tag(std::move(tag)), log(log)
    {}

    void
    onWorldStopRequested(Ticks) override
    {
        log.push_back(tag);
    }

    std::string tag;
    std::vector<std::string> &log;
};

TEST(SchedListenerChain, MirrorsRuntimeChainSemantics)
{
    std::vector<std::string> log;
    StopLogger a("a", log);
    StopLogger b("b", log);
    os::SchedListenerChain chain;
    EXPECT_TRUE(chain.empty());
    chain.add(&a);
    chain.add(&b);
    EXPECT_FALSE(chain.empty());

    chain.remove(&b);
    chain.remove(&b); // second remove: no-op
    chain.dispatch(
        [](os::SchedulerListener &l) { l.onWorldStopRequested(0); });
    EXPECT_EQ(log, (std::vector<std::string>{"a"}));

    chain.remove(&a);
    EXPECT_TRUE(chain.empty());
}

} // namespace
