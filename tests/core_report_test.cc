/**
 * @file
 * Tests for the report writers: headers, row counts and CSV structure.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/report.hh"

namespace {

using namespace jscale;
using core::SweepSet;

jvm::RunResult
fakeRun(const std::string &app, std::uint32_t threads)
{
    jvm::RunResult r;
    r.app_name = app;
    r.threads = threads;
    r.cores = threads;
    r.wall_time = 1000000 / threads + 1000;
    r.gc_time = 1000 * threads;
    r.heap_capacity = 3 * units::MiB;
    r.locks.acquisitions = 100 * threads;
    r.locks.contentions = 10 * threads;
    r.total_tasks = 400;
    r.heap.lifespan.add(100, 50);
    r.heap.lifespan.add(10000, 50);
    r.gc.minor_count = 5;
    for (std::uint32_t i = 0; i < threads; ++i) {
        jvm::ThreadSummary ts;
        ts.kind = os::ThreadKind::Mutator;
        ts.tasks_completed = 400 / threads;
        r.thread_summaries.push_back(ts);
    }
    return r;
}

SweepSet
fakeSweeps()
{
    SweepSet s;
    for (const std::string app : {"alpha", "beta"}) {
        for (const std::uint32_t t : {1u, 4u, 16u})
            s[app].push_back(fakeRun(app, t));
    }
    return s;
}

std::size_t
countLines(const std::string &s)
{
    return static_cast<std::size_t>(std::count(s.begin(), s.end(), '\n'));
}

TEST(Report, ScalabilityTableHasRowPerRun)
{
    std::ostringstream os;
    core::printScalabilityTable(os, fakeSweeps());
    // Title + header + underline + 6 rows.
    EXPECT_EQ(countLines(os.str()), 9u);
    EXPECT_NE(os.str().find("speedup"), std::string::npos);
    EXPECT_NE(os.str().find("alpha"), std::string::npos);
}

TEST(Report, ScalabilityCsvParsable)
{
    std::ostringstream os;
    core::writeScalabilityCsv(os, fakeSweeps());
    std::istringstream lines(os.str());
    std::string header;
    std::getline(lines, header);
    EXPECT_EQ(header,
              "app,threads,wall_ns,speedup,mutator_ns,gc_ns,gc_share,"
              "scalable");
    std::string line;
    std::size_t rows = 0;
    while (std::getline(lines, line))
        ++rows;
    EXPECT_EQ(rows, 6u);
}

TEST(Report, WorkloadDistributionTable)
{
    std::ostringstream os;
    core::printWorkloadDistributionTable(os, fakeSweeps());
    EXPECT_NE(os.str().find("eff-workers"), std::string::npos);
    EXPECT_EQ(countLines(os.str()), 9u);
}

TEST(Report, LockTablesTitleTheRightFigure)
{
    std::ostringstream a;
    core::printLockAcquisitionTable(a, fakeSweeps());
    EXPECT_NE(a.str().find("Fig. 1a"), std::string::npos);
    std::ostringstream b;
    core::printLockContentionTable(b, fakeSweeps());
    EXPECT_NE(b.str().find("Fig. 1b"), std::string::npos);
}

TEST(Report, LifespanCdfTableHasThresholdRows)
{
    std::ostringstream os;
    const auto sweeps = fakeSweeps();
    core::printLifespanCdfTable(os, "alpha", sweeps.at("alpha"));
    EXPECT_NE(os.str().find("1.00 KiB"), std::string::npos);
    EXPECT_NE(os.str().find("4T/4C"), std::string::npos);
}

TEST(Report, LifespanCsvHasAppColumn)
{
    std::ostringstream os;
    const auto sweeps = fakeSweeps();
    core::writeLifespanCdfCsv(os, "alpha", sweeps.at("alpha"));
    std::istringstream lines(os.str());
    std::string header;
    std::getline(lines, header);
    EXPECT_EQ(header, "app,threads,threshold_bytes,fraction_below");
}

TEST(Report, MutatorGcTable)
{
    std::ostringstream os;
    core::printMutatorGcTable(os, fakeSweeps());
    EXPECT_NE(os.str().find("Fig. 2"), std::string::npos);
    EXPECT_NE(os.str().find("mutator"), std::string::npos);
}

TEST(Report, SuspendWaitTableRenders)
{
    std::ostringstream os;
    core::printSuspendWaitTable(os, fakeSweeps());
    EXPECT_NE(os.str().find("suspend/cpu"), std::string::npos);
    EXPECT_EQ(countLines(os.str()), 9u);
    std::ostringstream csv;
    core::writeSuspendWaitCsv(csv, fakeSweeps());
    std::istringstream lines(csv.str());
    std::string header;
    std::getline(lines, header);
    EXPECT_EQ(header,
              "app,threads,mean_ready_ns,mean_blocked_ns,"
              "suspend_over_cpu,lifespan_lt_1k");
}

TEST(Report, RunSummaryContainsKeyMetrics)
{
    std::ostringstream os;
    core::printRunSummary(os, fakeRun("gamma", 8));
    const std::string s = os.str();
    EXPECT_NE(s.find("gamma"), std::string::npos);
    EXPECT_NE(s.find("wall time"), std::string::npos);
    EXPECT_NE(s.find("gc share"), std::string::npos);
    EXPECT_NE(s.find("lock contentions"), std::string::npos);
}

} // namespace
