/**
 * @file
 * End-to-end reproduction tests: the paper's headline observations must
 * hold on the simulated testbed (at reduced workload scale for test
 * speed). Each test corresponds to one claim of Sections II-III.
 */

#include <gtest/gtest.h>

#include "core/analyze.hh"
#include "core/experiment.hh"
#include "workload/dacapo.hh"

namespace {

using namespace jscale;
using core::ExperimentConfig;
using core::ExperimentRunner;
using core::ScalabilityAnalyzer;

ExperimentConfig
paperConfig()
{
    ExperimentConfig cfg;
    cfg.workload_scale = 0.15;
    return cfg;
}

/** Shared fixture computing each app's sweep once. */
class PaperFixture : public ::testing::Test
{
  protected:
    static std::vector<jvm::RunResult> &
    sweepOf(const std::string &app)
    {
        static std::map<std::string, std::vector<jvm::RunResult>> cache;
        auto it = cache.find(app);
        if (it == cache.end()) {
            ExperimentRunner runner(paperConfig());
            it = cache.emplace(app, runner.sweep(app, {1, 4, 16, 48}))
                     .first;
        }
        return it->second;
    }
};

TEST_F(PaperFixture, ScalableAppsKeepSpeedingUp)
{
    // Sec. II-C: sunflow, lusearch, xalan are scalable.
    for (const std::string app : {"sunflow", "lusearch", "xalan"}) {
        const auto &sweep = sweepOf(app);
        EXPECT_TRUE(ScalabilityAnalyzer::isScalable(sweep)) << app;
        // Execution time strictly improves at every step of the sweep.
        for (std::size_t i = 1; i < sweep.size(); ++i) {
            EXPECT_LT(sweep[i].wall_time, sweep[i - 1].wall_time)
                << app << " at " << sweep[i].threads << " threads";
        }
        EXPECT_GE(ScalabilityAnalyzer::speedup(sweep.front(),
                                               sweep.back()),
                  8.0)
            << app;
    }
}

TEST_F(PaperFixture, NonScalableAppsFlatten)
{
    for (const std::string app : {"h2", "eclipse", "jython"}) {
        const auto &sweep = sweepOf(app);
        EXPECT_FALSE(ScalabilityAnalyzer::isScalable(sweep)) << app;
        // Raw end-to-end speedup stays small (eclipse's pipeline warm-up
        // allows slightly over 3x from the slow single-thread mode).
        EXPECT_LT(ScalabilityAnalyzer::speedup(sweep.front(),
                                               sweep.back()),
                  3.5)
            << app;
    }
}

TEST_F(PaperFixture, Fig1aLockUsageGrowsOnlyForScalable)
{
    // Scalable: acquisitions at 48 threads clearly exceed those at 4.
    for (const std::string app : {"sunflow", "lusearch", "xalan"}) {
        const auto &sweep = sweepOf(app);
        const auto at4 = sweep[1].locks.acquisitions;
        const auto at48 = sweep[3].locks.acquisitions;
        // (At the reduced test scale the chunk size saturates at one
        // task early, compressing the growth; full-scale benches show
        // 2.4-6x.)
        EXPECT_GT(static_cast<double>(at48),
                  1.3 * static_cast<double>(at4))
            << app;
    }
    // Non-scalable: essentially constant (within 5%).
    for (const std::string app : {"h2", "eclipse", "jython"}) {
        const auto &sweep = sweepOf(app);
        const auto at4 = sweep[1].locks.acquisitions;
        const auto at48 = sweep[3].locks.acquisitions;
        EXPECT_NEAR(static_cast<double>(at48),
                    static_cast<double>(at4),
                    0.05 * static_cast<double>(at4))
            << app;
    }
}

TEST_F(PaperFixture, Fig1bContentionGrowsOnlyForScalable)
{
    for (const std::string app : {"sunflow", "lusearch", "xalan"}) {
        const auto &sweep = sweepOf(app);
        EXPECT_GT(sweep[3].locks.contentions,
                  2 * std::max<std::uint64_t>(sweep[1].locks.contentions,
                                              1))
            << app;
    }
    // Non-scalable: contention at 48 threads within 2x of 4 threads
    // (essentially constant once the serializing lock saturates).
    for (const std::string app : {"h2", "jython"}) {
        const auto &sweep = sweepOf(app);
        EXPECT_LT(static_cast<double>(sweep[3].locks.contentions),
                  1.5 * static_cast<double>(sweep[1].locks.contentions) +
                      50.0)
            << app;
    }
}

TEST_F(PaperFixture, Fig1cEclipseLifespansInsensitiveToThreads)
{
    const auto &sweep = sweepOf("eclipse");
    const double at4 = sweep[1].heap.lifespan.fractionBelow(1024);
    const double at48 = sweep[3].heap.lifespan.fractionBelow(1024);
    EXPECT_NEAR(at4, at48, 0.05);
}

TEST_F(PaperFixture, Fig1dXalanLifespansInflateWithThreads)
{
    const auto &sweep = sweepOf("xalan");
    const double at4 = sweep[1].heap.lifespan.fractionBelow(1024);
    const double at48 = sweep[3].heap.lifespan.fractionBelow(1024);
    EXPECT_GT(at4, 0.80) << "paper: >80% below 1KB at 4 threads";
    EXPECT_LT(at48, 0.65) << "paper: drops to ~50% at 48 threads";
    EXPECT_GT(at48, 0.30);
    // Monotone degradation through the sweep.
    for (std::size_t i = 2; i < sweep.size(); ++i) {
        EXPECT_LT(sweep[i].heap.lifespan.fractionBelow(1024),
                  sweep[i - 1].heap.lifespan.fractionBelow(1024) + 0.02);
    }
}

TEST_F(PaperFixture, Fig2GcTimeGrowsWhileMutatorKeepsFalling)
{
    for (const std::string app : {"sunflow", "lusearch", "xalan"}) {
        const auto &sweep = sweepOf(app);
        // Mutator time monotonically falls all the way to 48.
        for (std::size_t i = 1; i < sweep.size(); ++i) {
            EXPECT_LT(sweep[i].mutatorTime(), sweep[i - 1].mutatorTime())
                << app << " at " << sweep[i].threads;
        }
        // GC time at 48 exceeds GC time at 1 thread.
        EXPECT_GT(sweep.back().gc_time, sweep.front().gc_time) << app;
        // GC share grows.
        EXPECT_GT(ScalabilityAnalyzer::gcShare(sweep.back()),
                  ScalabilityAnalyzer::gcShare(sweep.front()))
            << app;
    }
}

TEST_F(PaperFixture, NurserySurvivalGrowsWithThreadsForXalan)
{
    const auto &sweep = sweepOf("xalan");
    EXPECT_GT(sweep.back().gc.nursery_survival.mean(),
              sweep[1].gc.nursery_survival.mean());
}

TEST_F(PaperFixture, WorkloadDistributionUniformVsConcentrated)
{
    // Sec. III intro: xalan/lusearch/sunflow spread work ~uniformly;
    // jython uses at most 4 threads even when 16+ are requested.
    for (const std::string app : {"sunflow", "lusearch", "xalan"}) {
        const auto &sweep = sweepOf(app);
        const auto &at48 = sweep[3];
        EXPECT_GE(ScalabilityAnalyzer::effectiveWorkers(at48), 40u)
            << app;
        EXPECT_LT(ScalabilityAnalyzer::taskDistributionCv(at48), 0.30)
            << app;
    }
    const auto &jython48 = sweepOf("jython")[3];
    EXPECT_LE(ScalabilityAnalyzer::effectiveWorkers(jython48), 4u);
}

TEST_F(PaperFixture, HeapUsageInsensitiveToThreads)
{
    // Sec. II-C: object count and heap need do not move with threads.
    for (const std::string app : {"xalan", "h2"}) {
        const auto &sweep = sweepOf(app);
        const double objs4 =
            static_cast<double>(sweep[1].heap.objects_allocated);
        const double objs48 =
            static_cast<double>(sweep[3].heap.objects_allocated);
        EXPECT_NEAR(objs48, objs4, objs4 * 0.06) << app;
        EXPECT_EQ(sweep[1].heap_capacity, sweep[3].heap_capacity) << app;
    }
}

TEST(PaperAblation, BiasedSchedulingReducesLifetimeInterference)
{
    ExperimentConfig base = paperConfig();
    ExperimentRunner base_runner(base);
    const auto def = base_runner.runApp("xalan", 48);

    ExperimentConfig biased_cfg = paperConfig();
    biased_cfg.biased_scheduling = true;
    biased_cfg.bias_groups = 4;
    ExperimentRunner biased_runner(biased_cfg);
    const auto biased = biased_runner.runApp("xalan", 48);

    EXPECT_GT(biased.heap.lifespan.fractionBelow(1024),
              def.heap.lifespan.fractionBelow(1024) + 0.10);
}

TEST(PaperAblation, CompartmentalizedHeapRemovesRoutineStw)
{
    ExperimentConfig shared_cfg = paperConfig();
    ExperimentRunner shared_runner(shared_cfg);
    const auto shared = shared_runner.runApp("xalan", 16);

    ExperimentConfig comp_cfg = paperConfig();
    comp_cfg.vm.heap.compartmentalized = true;
    ExperimentRunner comp_runner(comp_cfg);
    const auto comp = comp_runner.runApp("xalan", 16);

    EXPECT_GT(shared.gc.minor_count, 0u);
    EXPECT_GT(comp.gc.local_count, 0u);
    EXPECT_LT(comp.gc_time, shared.gc_time);
}

} // namespace
