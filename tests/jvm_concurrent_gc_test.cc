/**
 * @file
 * Tests for the concurrent old-generation collector: cycle triggering,
 * remark/sweep reclamation, concurrent mode failure fallback, and
 * determinism.
 */

#include <gtest/gtest.h>

#include "test_apps.hh"

namespace {

using namespace jscale;
using test::TinyApp;
using test::TinyAppParams;
using test::VmHarness;

/** Promotion-heavy parameters: objects tenure, then die in the old gen. */
TinyAppParams
oldChurnParams()
{
    TinyAppParams p;
    p.tasks_per_thread = 400;
    p.compute_per_task = 5 * units::US;
    p.allocs_per_task = 6;
    p.alloc_size = 1024;
    // TTL >> eden: objects survive several minor GCs, get promoted, and
    // die later — classic old-generation churn (live set ~2 MiB across
    // four threads, inside the 4 MiB old generation).
    p.alloc_ttl = 512 * units::KiB;
    return p;
}

jvm::VmConfig
concurrentConfig()
{
    jvm::VmConfig cfg = test::VmHarness::defaultVmConfig();
    cfg.heap.capacity = 6 * units::MiB;
    cfg.heap.tenure_threshold = 2;
    cfg.collector = jvm::CollectorKind::ConcurrentOld;
    // Initiate cycles early: the test workload promotes aggressively.
    cfg.concurrent.initiating_occupancy = 0.45;
    return cfg;
}

TEST(ConcurrentGc, CyclesRunAndRemarkReclaims)
{
    VmHarness h(4, concurrentConfig());
    TinyApp app(oldChurnParams());
    const jvm::RunResult r = h.vm.run(app, 4);
    EXPECT_GE(r.gc.concurrent_cycles, 2u);
    EXPECT_GT(r.gc.remark_count, 0u);
    // An occasional mode failure is legitimate CMS behaviour, but the
    // cycles must keep full collections rare.
    EXPECT_LE(r.gc.concurrent_failures, 1u);
    EXPECT_LE(r.gc.full_count, 1u);
    // Remark events are present and STW-accounted.
    bool saw_remark = false;
    for (const auto &ev : r.gc.events)
        saw_remark |= ev.kind == jvm::GcKind::Remark;
    EXPECT_TRUE(saw_remark);
    h.vm.heap().checkInvariants();
    EXPECT_EQ(r.heap.objects_allocated, r.heap.objects_died);
}

TEST(ConcurrentGc, ModeFailureFallsBackToFullGc)
{
    jvm::VmConfig cfg = concurrentConfig();
    // Pathologically slow marker: the cycle can never finish before the
    // old generation fills.
    cfg.concurrent.mark_bw = 0.0001;
    VmHarness h(4, cfg);
    TinyApp app(oldChurnParams());
    const jvm::RunResult r = h.vm.run(app, 4);
    EXPECT_GT(r.gc.concurrent_failures, 0u);
    EXPECT_GT(r.gc.full_count, 0u);
    h.vm.heap().checkInvariants();
}

TEST(ConcurrentGc, FewerFullsThanThroughputCollector)
{
    TinyAppParams p = oldChurnParams();
    jvm::VmConfig base = concurrentConfig();

    jvm::VmConfig throughput = base;
    throughput.collector = jvm::CollectorKind::Throughput;
    VmHarness ht(4, throughput);
    TinyApp app_t(p);
    const jvm::RunResult rt = ht.vm.run(app_t, 4);

    VmHarness hc(4, base);
    TinyApp app_c(p);
    const jvm::RunResult rc = hc.vm.run(app_c, 4);

    ASSERT_GT(rt.gc.full_count, 0u)
        << "workload must pressure the old generation";
    EXPECT_LT(rc.gc.full_count, rt.gc.full_count);
    // The concurrent collector's largest STW pause is smaller than the
    // throughput collector's (full GCs dominate its tail).
    auto max_pause = [](const jvm::RunResult &r) {
        Ticks worst = 0;
        for (const auto &ev : r.gc.events)
            worst = std::max(worst, ev.pause());
        return worst;
    };
    EXPECT_LT(max_pause(rc), max_pause(rt));
}

TEST(ConcurrentGc, MarkerThreadCompetesForCpu)
{
    VmHarness h(4, concurrentConfig());
    TinyApp app(oldChurnParams());
    const jvm::RunResult r = h.vm.run(app, 4);
    ASSERT_GT(r.gc.concurrent_cycles, 0u);
    Ticks marker_cpu = 0;
    for (const auto &ts : r.thread_summaries) {
        if (ts.name == "concurrent-mark")
            marker_cpu = ts.cpu_time;
    }
    EXPECT_GT(marker_cpu, 0u);
}

TEST(ConcurrentGc, DeterministicReplay)
{
    auto run = [] {
        VmHarness h(4, concurrentConfig(), 77);
        TinyApp app(oldChurnParams());
        return h.vm.run(app, 4);
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.wall_time, b.wall_time);
    EXPECT_EQ(a.gc.concurrent_cycles, b.gc.concurrent_cycles);
    EXPECT_EQ(a.gc.remark_count, b.gc.remark_count);
    EXPECT_EQ(a.sim_events, b.sim_events);
}

TEST(ConcurrentGc, IncompatibleWithCompartments)
{
    jvm::VmConfig cfg = concurrentConfig();
    cfg.heap.compartmentalized = true;
    TinyAppParams p;
    EXPECT_DEATH({
        VmHarness h(2, cfg);
        TinyApp app(p);
        h.vm.run(app, 2);
    }, "mutually exclusive");
}

TEST(HeapSweepOld, ReclaimsOnlyDeadOldObjects)
{
    jvm::HeapConfig cfg;
    cfg.capacity = 8 * units::MiB;
    cfg.tenure_threshold = 1;
    jvm::Heap heap(cfg, 1, nullptr);
    heap.allocate(0, 4000, 5000, 0, 0);            // dies after 5000B
    heap.allocate(0, 3000, jvm::kImmortalTtl, 0, 0);
    heap.collectMinor(0); // promotes both
    heap.allocate(0, 8000, jvm::kImmortalTtl, 0, 0); // kills the first
    ASSERT_EQ(heap.heapStats().objects_died, 1u);
    const auto w = heap.sweepOld(0);
    EXPECT_EQ(w.reclaimed_bytes, 4000u);
    EXPECT_EQ(w.live_bytes, 3000u);
    EXPECT_EQ(heap.oldUsed(), 3000u);
    // Eden content untouched by the old sweep.
    EXPECT_EQ(heap.edenUsed(), 8000u);
    heap.checkInvariants();
}

} // namespace
