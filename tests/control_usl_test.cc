/**
 * @file
 * UslModel unit tests: synthetic round-trips, degenerate sweeps and the
 * knee predictions the concurrency governor acts on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "control/usl.hh"

namespace {

using namespace jscale;
using control::UslFit;
using control::UslModel;
using control::UslPoint;

/** Exact USL curve samples for known coefficients. */
std::vector<UslPoint>
synthetic(double sigma, double kappa,
          const std::vector<double> &ns = {1, 2, 4, 8, 16, 32, 64})
{
    std::vector<UslPoint> pts;
    for (const double n : ns)
        pts.push_back({n, UslModel::speedupAt(n, sigma, kappa)});
    return pts;
}

TEST(UslModel, RecoversCoefficientsFromExactCurve)
{
    const double sigma = 0.08;
    const double kappa = 0.0008;
    const UslFit fit = UslModel::fit(synthetic(sigma, kappa));
    ASSERT_TRUE(fit.valid);
    EXPECT_NEAR(fit.sigma, sigma, 1e-9);
    EXPECT_NEAR(fit.kappa, kappa, 1e-9);
    // n* = sqrt((1 - sigma)/kappa) = sqrt(0.92/0.0008) = 33.91...
    EXPECT_NEAR(fit.n_star, std::sqrt((1.0 - sigma) / kappa), 1e-6);
    EXPECT_NEAR(fit.rms_residual, 0.0, 1e-9);
    EXPECT_EQ(fit.points, 7u);
}

TEST(UslModel, PredictMatchesTheLaw)
{
    const UslFit fit = UslModel::fit(synthetic(0.05, 0.002));
    ASSERT_TRUE(fit.valid);
    EXPECT_NEAR(fit.predict(1.0), 1.0, 1e-12);
    for (const double n : {2.0, 7.0, 21.0}) {
        EXPECT_NEAR(fit.predict(n),
                    UslModel::speedupAt(n, fit.sigma, fit.kappa), 1e-12);
    }
    // The peak prediction is the curve's value at n*.
    EXPECT_NEAR(fit.peak_speedup, fit.predict(fit.n_star), 1e-12);
    // And n* is a genuine local maximum of the fitted curve.
    EXPECT_GE(fit.peak_speedup, fit.predict(fit.n_star * 0.8));
    EXPECT_GE(fit.peak_speedup, fit.predict(fit.n_star * 1.2));
}

TEST(UslModel, LinearSweepHasNoFiniteKnee)
{
    // Perfect scaling: S(n) = n. Both losses fit to ~0 and there is no
    // interior optimum — n_star = 0 encodes "the more the better".
    std::vector<UslPoint> pts;
    for (const double n : {1.0, 2.0, 4.0, 8.0, 16.0, 48.0})
        pts.push_back({n, n});
    const UslFit fit = UslModel::fit(pts);
    ASSERT_TRUE(fit.valid);
    EXPECT_NEAR(fit.sigma, 0.0, 1e-9);
    EXPECT_NEAR(fit.kappa, 0.0, 1e-9);
    EXPECT_DOUBLE_EQ(fit.n_star, 0.0);
    // With no peak, the reported maximum is the curve at the largest
    // fitted point.
    EXPECT_NEAR(fit.peak_speedup, 48.0, 1e-6);
}

TEST(UslModel, AmdahlSweepHasNoFiniteKnee)
{
    // Pure contention (kappa = 0): monotone saturation, still no knee.
    const UslFit fit = UslModel::fit(synthetic(0.2, 0.0));
    ASSERT_TRUE(fit.valid);
    EXPECT_NEAR(fit.sigma, 0.2, 1e-9);
    EXPECT_NEAR(fit.kappa, 0.0, 1e-9);
    EXPECT_DOUBLE_EQ(fit.n_star, 0.0);
}

TEST(UslModel, RetrogradeFromTheStartClampsToOne)
{
    // sigma > 1 with crosstalk: adding any thread loses throughput, so
    // the optimum is a single thread.
    const UslFit fit = UslModel::fit(synthetic(1.3, 0.01));
    ASSERT_TRUE(fit.valid);
    EXPECT_GT(fit.sigma, 1.0);
    EXPECT_DOUBLE_EQ(fit.n_star, 1.0);
}

TEST(UslModel, RetrogradeSweepPutsKneeInsideTheRange)
{
    // The paper's non-scalable shape: a knee at ~6 threads, collapse
    // after. The fit must place n* inside the sweep.
    const double sigma = 0.1;
    const double kappa = 0.025; // n* = sqrt(0.9/0.025) = 6.0
    const UslFit fit = UslModel::fit(synthetic(sigma, kappa));
    ASSERT_TRUE(fit.valid);
    EXPECT_NEAR(fit.n_star, 6.0, 1e-6);
    // Observed: the best synthetic point is at n = 4 or 8; n* between.
    EXPECT_GT(fit.n_star, 4.0);
    EXPECT_LT(fit.n_star, 8.0);
}

TEST(UslModel, NegativeKappaClampsAndRefits)
{
    // Superlinear tail (speedup above linear at large n) drives the
    // unconstrained kappa negative; the clamp must keep it at 0 and
    // refit sigma alone rather than report a nonsense knee.
    std::vector<UslPoint> pts = {
        {1, 1.0}, {2, 1.9}, {4, 3.9}, {8, 8.2}, {16, 17.0}};
    const UslFit fit = UslModel::fit(pts);
    ASSERT_TRUE(fit.valid);
    EXPECT_GE(fit.kappa, 0.0);
    EXPECT_GE(fit.sigma, 0.0);
    EXPECT_DOUBLE_EQ(fit.n_star, 0.0);
}

TEST(UslModel, TooFewInformativePointsIsInvalid)
{
    EXPECT_FALSE(UslModel::fit({}).valid);
    EXPECT_FALSE(UslModel::fit({{1, 1.0}}).valid);
    // n = 1 anchors carry no information in the linearized form.
    EXPECT_FALSE(UslModel::fit({{1, 1.0}, {1, 1.0}, {2, 1.7}}).valid);
    // Two informative points are the minimum.
    EXPECT_TRUE(UslModel::fit({{2, 1.7}, {4, 2.9}}).valid);
}

TEST(UslModel, IgnoresUnusablePoints)
{
    // Zero/negative speedups and sub-one thread counts are dropped, not
    // propagated into the solve.
    const UslFit clean = UslModel::fit(synthetic(0.1, 0.001));
    auto noisy = synthetic(0.1, 0.001);
    noisy.push_back({0.5, 2.0});
    noisy.push_back({8, 0.0});
    noisy.push_back({16, -3.0});
    const UslFit fit = UslModel::fit(noisy);
    ASSERT_TRUE(fit.valid);
    EXPECT_NEAR(fit.sigma, clean.sigma, 1e-9);
    EXPECT_NEAR(fit.kappa, clean.kappa, 1e-9);
}

TEST(UslModel, NoisyMeasurementsStillLandNearTruth)
{
    // Deterministic +/-3% ripple on an n* = 24 curve: the fitted knee
    // must stay within a few threads of the truth.
    const double sigma = 0.02;
    const double kappa = 0.0017; // n* = sqrt(0.98/0.0017) = 24.01
    std::vector<UslPoint> pts;
    int flip = 1;
    for (const double n : {1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 24.0, 32.0,
                           48.0}) {
        const double wobble = 1.0 + 0.03 * flip;
        flip = -flip;
        pts.push_back({n, UslModel::speedupAt(n, sigma, kappa) * wobble});
    }
    const UslFit fit = UslModel::fit(pts);
    ASSERT_TRUE(fit.valid);
    EXPECT_NEAR(fit.n_star, 24.0, 5.0);
    EXPECT_GT(fit.rms_residual, 0.0);
}

} // namespace
