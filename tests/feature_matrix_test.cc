/**
 * @file
 * Feature-interaction matrix: every application model crossed with
 * every VM/scheduler feature combination must complete with intact
 * accounting. Feature interactions (adaptive sizing during concurrent
 * cycles, TLABs under biased scheduling, ...) are where integration
 * bugs live; this sweep exercises them systematically at small scale.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/analyze.hh"
#include "core/experiment.hh"
#include "workload/dacapo.hh"

namespace {

using namespace jscale;
using core::ExperimentConfig;
using core::ExperimentRunner;

/** Feature bundles under test. */
enum class Features
{
    Baseline,
    Adaptive,
    Concurrent,
    Compartments,
    Tlab,
    Biased,
    Scatter,
    AdaptiveConcurrentTlab,
    BiasedScatterTlab,
};

const char *
featuresName(Features f)
{
    switch (f) {
      case Features::Baseline: return "baseline";
      case Features::Adaptive: return "adaptive";
      case Features::Concurrent: return "concurrent";
      case Features::Compartments: return "compartments";
      case Features::Tlab: return "tlab";
      case Features::Biased: return "biased";
      case Features::Scatter: return "scatter";
      case Features::AdaptiveConcurrentTlab: return "adaptive_conc_tlab";
      case Features::BiasedScatterTlab: return "biased_scatter_tlab";
    }
    return "?";
}

ExperimentConfig
configure(Features f)
{
    ExperimentConfig cfg;
    cfg.workload_scale = 0.05;
    switch (f) {
      case Features::Baseline:
        break;
      case Features::Adaptive:
        cfg.vm.adaptive.enabled = true;
        break;
      case Features::Concurrent:
        cfg.vm.collector = jvm::CollectorKind::ConcurrentOld;
        break;
      case Features::Compartments:
        cfg.vm.heap.compartmentalized = true;
        break;
      case Features::Tlab:
        cfg.vm.heap.tlab_size = 8 * units::KiB;
        break;
      case Features::Biased:
        cfg.biased_scheduling = true;
        cfg.bias_groups = 2;
        break;
      case Features::Scatter:
        cfg.placement = machine::Machine::EnablePolicy::Scatter;
        break;
      case Features::AdaptiveConcurrentTlab:
        cfg.vm.adaptive.enabled = true;
        cfg.vm.collector = jvm::CollectorKind::ConcurrentOld;
        cfg.vm.heap.tlab_size = 8 * units::KiB;
        break;
      case Features::BiasedScatterTlab:
        cfg.biased_scheduling = true;
        cfg.bias_groups = 2;
        cfg.placement = machine::Machine::EnablePolicy::Scatter;
        cfg.vm.heap.tlab_size = 8 * units::KiB;
        break;
    }
    return cfg;
}

class FeatureMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, Features>>
{
};

TEST_P(FeatureMatrix, CompletesWithConsistentAccounting)
{
    const auto [app, features] = GetParam();
    ExperimentRunner runner(configure(features));
    const jvm::RunResult r = runner.runApp(app, 8);

    // Completion and conservation invariants hold under any feature mix.
    EXPECT_GT(r.wall_time, 0u);
    EXPECT_EQ(r.wall_time, r.mutatorTime() + r.gc_time);
    EXPECT_GT(r.total_tasks, 0u);
    EXPECT_EQ(r.heap.objects_allocated, r.heap.objects_died);
    EXPECT_EQ(r.heap.bytes_allocated, r.heap.bytes_died);
    EXPECT_EQ(r.locks.biased_acquisitions + r.locks.thin_acquisitions +
                  r.locks.fat_acquisitions,
              r.locks.acquisitions);
    EXPECT_LE(r.locks.contentions, r.locks.acquisitions);

    // Work volume is a property of the app, not the VM features.
    ExperimentRunner baseline(configure(Features::Baseline));
    EXPECT_EQ(r.total_tasks, baseline.runApp(app, 8).total_tasks);
}

TEST_P(FeatureMatrix, ReplaysDeterministically)
{
    const auto [app, features] = GetParam();
    ExperimentRunner a(configure(features));
    ExperimentRunner b(configure(features));
    const auto ra = a.runApp(app, 8);
    const auto rb = b.runApp(app, 8);
    EXPECT_EQ(ra.wall_time, rb.wall_time);
    EXPECT_EQ(ra.sim_events, rb.sim_events);
}

INSTANTIATE_TEST_SUITE_P(
    AppsByFeatures, FeatureMatrix,
    ::testing::Combine(
        ::testing::Values("sunflow", "lusearch", "xalan", "h2", "eclipse",
                          "jython"),
        ::testing::Values(Features::Baseline, Features::Adaptive,
                          Features::Concurrent, Features::Compartments,
                          Features::Tlab, Features::Biased,
                          Features::Scatter,
                          Features::AdaptiveConcurrentTlab,
                          Features::BiasedScatterTlab)),
    [](const auto &info) {
        return std::get<0>(info.param) + "_" +
               featuresName(std::get<1>(info.param));
    });

} // namespace
