/**
 * @file
 * Tests for the workload framework and the six DaCapo-like application
 * models: allocation profiles, action-stream protocol invariants and
 * model-specific concurrency structure.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "test_apps.hh"
#include "workload/alloc_profile.hh"
#include "workload/dacapo.hh"
#include "workload/source.hh"

namespace {

using namespace jscale;
using namespace jscale::workload;

TEST(AllocationProfile, SizesWithinBounds)
{
    AllocationProfile p;
    Rng rng(41);
    for (int i = 0; i < 20000; ++i) {
        const Bytes s = p.drawSize(rng);
        EXPECT_GE(s, p.size_min);
        EXPECT_LE(s, p.size_max);
    }
}

TEST(AllocationProfile, TtlMixtureFractions)
{
    AllocationProfile p;
    p.frac_tiny = 0.5;
    p.tiny_max = 24;
    Rng rng(42);
    const int n = 100000;
    int tiny = 0;
    for (int i = 0; i < n; ++i)
        tiny += p.drawTtl(rng) <= p.tiny_max;
    // At least the tiny fraction lands at or below tiny_max (the short
    // component cannot: short_lo > tiny_max).
    EXPECT_NEAR(static_cast<double>(tiny) / n, 0.5, 0.02);
}

TEST(AllocationProfile, TtlLongTailBounded)
{
    AllocationProfile p;
    Rng rng(43);
    for (int i = 0; i < 50000; ++i)
        EXPECT_LE(p.drawTtl(rng), p.long_hi);
}

TEST(TaskPool, ClaimsExactlyTotal)
{
    TaskPool pool;
    pool.remaining = 100;
    std::uint64_t claimed = 0;
    while (true) {
        const auto n = pool.claim(7);
        if (n == 0)
            break;
        claimed += n;
    }
    EXPECT_EQ(claimed, 100u);
    EXPECT_EQ(pool.claim(7), 0u);
}

TEST(EmitTaskBody, ComputeAndAllocCountsPreserved)
{
    std::vector<jvm::Action> out;
    Rng rng(44);
    AllocationProfile prof;
    emitTaskBody(out, rng, prof, 100 * units::US, 10, 3);
    Ticks compute = 0;
    int allocs = 0;
    for (const auto &a : out) {
        if (a.kind == jvm::Action::Kind::Compute)
            compute += a.ticks;
        if (a.kind == jvm::Action::Kind::Allocate) {
            ++allocs;
            EXPECT_EQ(a.site, 3u);
        }
    }
    EXPECT_EQ(allocs, 10);
    EXPECT_EQ(compute, 100 * units::US);
}

TEST(EmitPinnedData, TotalApproximatelyReached)
{
    std::vector<jvm::Action> out;
    Rng rng(45);
    emitPinnedData(out, rng, 64 * units::KiB, 16, 1);
    EXPECT_EQ(out.size(), 16u);
    Bytes total = 0;
    for (const auto &a : out) {
        EXPECT_EQ(a.kind, jvm::Action::Kind::Allocate);
        EXPECT_EQ(a.ttl, jvm::kImmortalTtl);
        total += a.bytes;
    }
    EXPECT_GT(total, 32 * units::KiB);
    EXPECT_LT(total, 128 * units::KiB);
}

TEST(Dacapo, FactoryKnowsAllSixApps)
{
    const auto &names = dacapoAppNames();
    ASSERT_EQ(names.size(), 6u);
    for (const auto &name : names) {
        auto app = makeDacapoApp(name);
        ASSERT_NE(app, nullptr);
        EXPECT_EQ(app->appName(), name);
    }
}

TEST(Dacapo, UnknownAppIsFatal)
{
    EXPECT_EXIT(makeDacapoApp("nosuchapp"),
                ::testing::ExitedWithCode(1), "unknown DaCapo app");
}

TEST(Dacapo, ClassificationMatchesPaper)
{
    EXPECT_TRUE(dacapoExpectedScalable("sunflow"));
    EXPECT_TRUE(dacapoExpectedScalable("lusearch"));
    EXPECT_TRUE(dacapoExpectedScalable("xalan"));
    EXPECT_FALSE(dacapoExpectedScalable("h2"));
    EXPECT_FALSE(dacapoExpectedScalable("eclipse"));
    EXPECT_FALSE(dacapoExpectedScalable("jython"));
}

/** Protocol invariants of every app's action stream, per app x threads. */
class AppStreamProtocol
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::uint32_t>>
{
};

TEST_P(AppStreamProtocol, BalancedLocksAndTermination)
{
    const auto [name, threads] = GetParam();
    // Drain every thread's action stream directly (no simulation) and
    // check protocol invariants: balanced enter/exit per monitor, End
    // exactly once, bounded length.
    test::VmHarness h(std::min<std::uint32_t>(threads, 8));
    auto app = makeDacapoApp(name, /*scale=*/0.05);
    jvm::AppContext ctx(h.vm, threads, Rng(7));
    app->setup(ctx);

    std::uint64_t total_task_dones = 0;
    for (std::uint32_t i = 0; i < threads; ++i) {
        auto src = app->threadSource(i, ctx);
        ASSERT_NE(src, nullptr);
        std::map<std::uint32_t, int> depth;
        bool ended = false;
        for (std::uint64_t steps = 0; steps < 20'000'000; ++steps) {
            const jvm::Action a = src->next();
            if (a.kind == jvm::Action::Kind::MonitorEnter) {
                ++depth[a.id];
                EXPECT_EQ(depth[a.id], 1) << "recursive enter";
            } else if (a.kind == jvm::Action::Kind::MonitorExit) {
                --depth[a.id];
                EXPECT_EQ(depth[a.id], 0) << "unbalanced exit";
            } else if (a.kind == jvm::Action::Kind::TaskDone) {
                ++total_task_dones;
            } else if (a.kind == jvm::Action::Kind::End) {
                ended = true;
                break;
            }
        }
        EXPECT_TRUE(ended) << name << " thread " << i
                           << " stream did not terminate";
        for (const auto &[id, d] : depth)
            EXPECT_EQ(d, 0) << "monitor " << id << " left held";
    }
    EXPECT_GT(total_task_dones, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, AppStreamProtocol,
    ::testing::Combine(::testing::Values("sunflow", "lusearch", "xalan",
                                         "h2", "eclipse", "jython"),
                       ::testing::Values(1u, 4u, 48u)),
    [](const auto &info) {
        return std::get<0>(info.param) + "_" +
               std::to_string(std::get<1>(info.param)) + "t";
    });

TEST(Dacapo, WorkVolumeIndependentOfThreadCount)
{
    // "Each application instantiates about the same number of objects
    // ... even as we increase the number of threads" (Sec. II-C): count
    // TaskDone actions across all streams for two thread settings.
    for (const std::string name :
         {"sunflow", "lusearch", "xalan", "h2", "jython"}) {
        std::map<std::uint32_t, std::uint64_t> tasks_by_threads;
        for (const std::uint32_t threads : {4u, 16u}) {
            test::VmHarness h(8);
            auto app = makeDacapoApp(name, 0.05);
            jvm::AppContext ctx(h.vm, threads, Rng(7));
            app->setup(ctx);
            std::uint64_t tasks = 0;
            for (std::uint32_t i = 0; i < threads; ++i) {
                auto src = app->threadSource(i, ctx);
                while (true) {
                    const jvm::Action a = src->next();
                    if (a.kind == jvm::Action::Kind::TaskDone)
                        ++tasks;
                    if (a.kind == jvm::Action::Kind::End)
                        break;
                }
            }
            tasks_by_threads[threads] = tasks;
        }
        EXPECT_EQ(tasks_by_threads[4], tasks_by_threads[16]) << name;
    }
}

TEST(Dacapo, JythonConcentratesWorkOnFourThreads)
{
    test::VmHarness h(8);
    auto app = makeDacapoApp("jython", 0.05);
    jvm::AppContext ctx(h.vm, 16, Rng(7));
    app->setup(ctx);
    int threads_with_tasks = 0;
    for (std::uint32_t i = 0; i < 16; ++i) {
        auto src = app->threadSource(i, ctx);
        bool has_task = false;
        while (true) {
            const jvm::Action a = src->next();
            if (a.kind == jvm::Action::Kind::TaskDone)
                has_task = true;
            if (a.kind == jvm::Action::Kind::End)
                break;
        }
        threads_with_tasks += has_task;
    }
    EXPECT_LE(threads_with_tasks, 4);
}

TEST(Dacapo, ScaleMultipliesWork)
{
    test::VmHarness h(8);
    auto count_tasks = [&h](double scale) {
        auto app = makeDacapoApp("sunflow", scale);
        jvm::AppContext ctx(h.vm, 2, Rng(7));
        app->setup(ctx);
        std::uint64_t tasks = 0;
        for (std::uint32_t i = 0; i < 2; ++i) {
            auto src = app->threadSource(i, ctx);
            while (true) {
                const jvm::Action a = src->next();
                if (a.kind == jvm::Action::Kind::TaskDone)
                    ++tasks;
                if (a.kind == jvm::Action::Kind::End)
                    break;
            }
        }
        return tasks;
    };
    const auto small = count_tasks(0.05);
    const auto large = count_tasks(0.10);
    EXPECT_NEAR(static_cast<double>(large),
                2.0 * static_cast<double>(small),
                static_cast<double>(small) * 0.1);
}

} // namespace
