/**
 * @file
 * Sharded campaign tests: slice assignment (deterministic, disjoint,
 * covering, position-independent) and the per-point run result cache
 * (lossless roundtrip, fingerprint binding, corruption tolerance).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "base/chaos.hh"
#include "core/experiment.hh"
#include "core/run_record.hh"
#include "core/shard.hh"

namespace {

using namespace jscale;

std::vector<std::string>
sampleKeys()
{
    std::vector<std::string> keys;
    for (const std::string app :
         {"sunflow", "lusearch", "xalan", "h2", "eclipse", "jython"})
        for (const std::uint32_t t : {1u, 2u, 4u, 8u, 16u, 32u})
            for (const std::uint64_t s : {1ull, 7ull, 0x51d5eaeull})
                keys.push_back(app + "|t" + std::to_string(t) + "|s" +
                               std::to_string(s));
    return keys;
}

TEST(ShardOfKey, EveryKeyLandsInExactlyOneSlice)
{
    for (std::uint32_t of = 1; of <= 8; ++of) {
        for (const std::string &key : sampleKeys()) {
            const std::uint32_t shard = shardOfKey(key, of);
            ASSERT_LT(shard, of) << key << " of=" << of;
            // Disjointness: exactly one ShardSpec owns each key.
            unsigned owners = 0;
            for (std::uint32_t i = 0; i < of; ++i)
                owners += core::ShardSpec{i, of}.owns(key) ? 1u : 0u;
            EXPECT_EQ(owners, 1u) << key << " of=" << of;
        }
    }
}

TEST(ShardOfKey, SlicesCoverAllShards)
{
    // With a realistic campaign-sized key set, no shard is starved.
    const auto keys = sampleKeys();
    for (std::uint32_t of = 2; of <= 8; ++of) {
        std::set<std::uint32_t> seen;
        for (const std::string &key : keys)
            seen.insert(shardOfKey(key, of));
        EXPECT_EQ(seen.size(), of) << "of=" << of;
    }
}

TEST(ShardOfKey, PositionIndependentAndStable)
{
    // The assignment is a pure function of the key: repeated calls and
    // calls interleaved with other keys agree, so adding or removing
    // campaign points never moves the surviving points across shards.
    const auto keys = sampleKeys();
    std::vector<std::uint32_t> first;
    for (const std::string &key : keys)
        first.push_back(shardOfKey(key, 5));
    for (std::size_t i = keys.size(); i-- > 0;)
        EXPECT_EQ(shardOfKey(keys[i], 5), first[i]) << keys[i];
}

TEST(ShardOfKey, DegenerateCountsMapToShardZero)
{
    EXPECT_EQ(shardOfKey("sunflow|t4|s1", 1), 0u);
    EXPECT_EQ(shardOfKey("sunflow|t4|s1", 0), 0u);
    EXPECT_FALSE((core::ShardSpec{0, 1}.active()));
    EXPECT_TRUE((core::ShardSpec{0, 2}.active()));
}

TEST(ShardRecordFileName, DistinctAndFilesystemSafe)
{
    std::set<std::string> names;
    for (const std::string &key : sampleKeys()) {
        const std::string name = core::RunCache::recordFileName(key);
        EXPECT_TRUE(names.insert(name).second) << name;
        EXPECT_EQ(name.find('/'), std::string::npos) << name;
        EXPECT_EQ(name.find('|'), std::string::npos) << name;
    }
    // Keys differing only in hash-sensitive characters stay distinct.
    EXPECT_NE(core::RunCache::recordFileName("h2|t4|s1"),
              core::RunCache::recordFileName("h2|t4|s2"));
}

class RunCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override { std::filesystem::remove_all(dir_); }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    jvm::RunResult simulateOnce()
    {
        core::ExperimentConfig cfg;
        cfg.workload_scale = 0.05;
        cfg.seed = 11;
        core::ExperimentRunner runner(cfg);
        return runner.runApp("xalan", 4);
    }

    std::string canonical(const std::string &key, const jvm::RunResult &r)
    {
        std::ostringstream os;
        core::writeRunRecord(os, key, "fp-1", r);
        return os.str();
    }

    const std::string dir_ = "run_cache_test_dir";
};

TEST_F(RunCacheTest, StoreThenLoadIsLossless)
{
    const std::string key = "xalan|t4|s11";
    const jvm::RunResult original = simulateOnce();
    std::filesystem::create_directories(dir_);
    core::RunCache cache(dir_, "fp-1");
    cache.store(key, original);

    jvm::RunResult restored;
    ASSERT_TRUE(cache.load(key, restored));
    // Lossless: the restored result re-serializes to identical bytes,
    // which is exactly the property byte-identical merges rest on.
    EXPECT_EQ(canonical(key, restored), canonical(key, original));
}

TEST_F(RunCacheTest, MissingKeyIsAMiss)
{
    std::filesystem::create_directories(dir_);
    core::RunCache cache(dir_, "fp-1");
    jvm::RunResult out;
    EXPECT_FALSE(cache.load("h2|t8|s3", out));
}

TEST_F(RunCacheTest, ForeignFingerprintIsAMiss)
{
    const std::string key = "xalan|t4|s11";
    std::filesystem::create_directories(dir_);
    core::RunCache writer(dir_, "fp-1");
    writer.store(key, simulateOnce());

    // Same directory, differently configured campaign: never mix.
    core::RunCache reader(dir_, "fp-2");
    jvm::RunResult out;
    EXPECT_FALSE(reader.load(key, out));
}

TEST_F(RunCacheTest, CorruptRecordIsAMissNotAnAbort)
{
    const std::string key = "xalan|t4|s11";
    std::filesystem::create_directories(dir_);
    core::RunCache cache(dir_, "fp-1");
    cache.store(key, simulateOnce());

    const std::filesystem::path file =
        std::filesystem::path(dir_) / core::RunCache::recordFileName(key);
    // Truncate the record: the "end" trailer vanishes, as after a torn
    // write that somehow survived the atomic-rename protocol.
    const auto size = std::filesystem::file_size(file);
    std::filesystem::resize_file(file, size / 2);

    jvm::RunResult out;
    EXPECT_FALSE(cache.load(key, out));

    std::ofstream(file, std::ios::trunc) << "total garbage\n";
    EXPECT_FALSE(cache.load(key, out));
}

TEST_F(RunCacheTest, FailedMarkersRoundtrip)
{
    // Failed points are cached too, so retries do not re-run
    // deterministic aborts and merges render honest failure rows.
    jvm::RunResult marker;
    marker.app_name = "h2";
    marker.threads = 8;
    marker.run_error = "watchdog: no progress for 5000 ticks";
    std::filesystem::create_directories(dir_);
    core::RunCache cache(dir_, "fp-1");
    cache.store("h2|t8|s3", marker);

    jvm::RunResult out;
    ASSERT_TRUE(cache.load("h2|t8|s3", out));
    EXPECT_TRUE(out.failed());
    EXPECT_EQ(out.run_error, marker.run_error);
    EXPECT_EQ(out.app_name, "h2");
    EXPECT_EQ(out.threads, 8u);
}

TEST(CampaignPointStatsTest, ResetZeroesEveryCounter)
{
    core::campaignPointStats().salvaged += 3;
    core::campaignPointStats().executed += 2;
    core::campaignPointStats().failed += 1;
    core::campaignPointStats().missing += 4;
    core::campaignPointStats().skipped += 5;
    core::resetCampaignPointStats();
    EXPECT_EQ(core::campaignPointStats().salvaged.load(), 0u);
    EXPECT_EQ(core::campaignPointStats().executed.load(), 0u);
    EXPECT_EQ(core::campaignPointStats().failed.load(), 0u);
    EXPECT_EQ(core::campaignPointStats().missing.load(), 0u);
    EXPECT_EQ(core::campaignPointStats().skipped.load(), 0u);
}

} // namespace
