/**
 * @file
 * FaultPlan unit tests: spec-grammar parsing (accepting and rejecting),
 * and the intensity dial's determinism and monotonicity.
 */

#include <gtest/gtest.h>

#include <string>

#include "base/units.hh"
#include "fault/fault.hh"

namespace {

using namespace jscale;
using fault::FaultKind;
using fault::FaultPlan;

TEST(FaultPlanParse, EmptySpecIsEmptyPlan)
{
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(FaultPlan::parse("", plan, err)) << err;
    EXPECT_TRUE(plan.empty());
}

TEST(FaultPlanParse, FullGrammarRoundTrip)
{
    const std::string spec =
        "coreoff@100:n=2:for=200,slow@50:factor=0.25:for=10,"
        "preempt@80:n=3:every=2:for=1,kill@250,stall@120:n=2:for=5,"
        "heap@300:mb=24:for=100,gcworkers@10:n=2:for=40";
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(FaultPlan::parse(spec, plan, err)) << err;
    ASSERT_EQ(plan.faults.size(), 7u);
    EXPECT_EQ(plan.spec, spec);
    EXPECT_FALSE(plan.describe().empty());
}

TEST(FaultPlanParse, EventsAreSortedByTime)
{
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(
        FaultPlan::parse("kill@250,coreoff@100:n=2,heap@50:mb=8", plan,
                         err))
        << err;
    ASSERT_EQ(plan.faults.size(), 3u);
    EXPECT_EQ(plan.faults[0].kind, FaultKind::HeapPressure);
    EXPECT_EQ(plan.faults[1].kind, FaultKind::CoreOffline);
    EXPECT_EQ(plan.faults[2].kind, FaultKind::MutatorKill);
    EXPECT_LE(plan.faults[0].at, plan.faults[1].at);
    EXPECT_LE(plan.faults[1].at, plan.faults[2].at);
    EXPECT_EQ(plan.faults[1].count, 2u);
}

TEST(FaultPlanParse, TimesAreMilliseconds)
{
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(FaultPlan::parse("coreoff@1.5:for=0.5", plan, err)) << err;
    ASSERT_EQ(plan.faults.size(), 1u);
    EXPECT_EQ(plan.faults[0].at, static_cast<Ticks>(1.5 * units::MS));
    EXPECT_EQ(plan.faults[0].duration,
              static_cast<Ticks>(0.5 * units::MS));
}

TEST(FaultPlanParse, RejectsMalformedSpecs)
{
    FaultPlan plan;
    std::string err;
    // Unknown kind.
    EXPECT_FALSE(FaultPlan::parse("bogus@5", plan, err));
    EXPECT_NE(err.find("bogus"), std::string::npos);
    // Missing injection time.
    EXPECT_FALSE(FaultPlan::parse("coreoff", plan, err));
    // Garbage time.
    EXPECT_FALSE(FaultPlan::parse("coreoff@abc", plan, err));
    // Option without '='.
    EXPECT_FALSE(FaultPlan::parse("coreoff@5:n", plan, err));
    // Unknown option key.
    EXPECT_FALSE(FaultPlan::parse("coreoff@5:bananas=2", plan, err));
    // Zero count.
    EXPECT_FALSE(FaultPlan::parse("coreoff@5:n=0", plan, err));
    // Slowdown factor out of (0, 1].
    EXPECT_FALSE(FaultPlan::parse("slow@5:factor=0", plan, err));
    EXPECT_FALSE(FaultPlan::parse("slow@5:factor=1.5", plan, err));
    // Heap spike without a size... has a default, but mb=0 is invalid.
    EXPECT_FALSE(FaultPlan::parse("heap@5:mb=0", plan, err));
    // Negative time.
    EXPECT_FALSE(FaultPlan::parse("kill@-3", plan, err));
}

TEST(FaultPlanIntensity, IdenticalArgumentsYieldIdenticalPlans)
{
    const auto a = FaultPlan::fromIntensity(0.6, 7, 400 * units::MS);
    const auto b = FaultPlan::fromIntensity(0.6, 7, 400 * units::MS);
    ASSERT_EQ(a.faults.size(), b.faults.size());
    EXPECT_FALSE(a.empty());
    for (std::size_t i = 0; i < a.faults.size(); ++i) {
        EXPECT_EQ(a.faults[i].kind, b.faults[i].kind) << i;
        EXPECT_EQ(a.faults[i].at, b.faults[i].at) << i;
        EXPECT_EQ(a.faults[i].duration, b.faults[i].duration) << i;
        EXPECT_EQ(a.faults[i].count, b.faults[i].count) << i;
        EXPECT_EQ(a.faults[i].bytes, b.faults[i].bytes) << i;
    }
    EXPECT_EQ(a.describe(), b.describe());
}

TEST(FaultPlanIntensity, SeedChangesTheSchedule)
{
    const auto a = FaultPlan::fromIntensity(0.6, 7, 400 * units::MS);
    const auto b = FaultPlan::fromIntensity(0.6, 8, 400 * units::MS);
    EXPECT_NE(a.describe(), b.describe());
}

TEST(FaultPlanIntensity, HigherIntensityInjectsMore)
{
    const auto low = FaultPlan::fromIntensity(0.1, 7, 400 * units::MS);
    const auto high = FaultPlan::fromIntensity(1.0, 7, 400 * units::MS);
    EXPECT_GE(high.faults.size(), low.faults.size());
    EXPECT_GE(high.faults.size(), 5u);
    EXPECT_GE(low.faults.size(), 1u);
}

TEST(FaultPlanIntensity, ZeroIntensityStillParsesViaSpecString)
{
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(FaultPlan::parse("intensity=0.5:seed=3:horizon=200",
                                 plan, err))
        << err;
    EXPECT_FALSE(plan.empty());
    const auto direct = FaultPlan::fromIntensity(0.5, 3, 200 * units::MS);
    EXPECT_EQ(plan.describe(), direct.describe());

    // Out-of-range intensity is rejected.
    EXPECT_FALSE(FaultPlan::parse("intensity=1.5", plan, err));
    EXPECT_FALSE(FaultPlan::parse("intensity=-0.1", plan, err));
}

TEST(FaultPlanIntensity, AllEventsLandWithinTheHorizon)
{
    const Ticks horizon = 250 * units::MS;
    const auto plan = FaultPlan::fromIntensity(1.0, 11, horizon);
    for (const auto &f : plan.faults)
        EXPECT_LE(f.at, horizon) << f.describe();
}

} // namespace
