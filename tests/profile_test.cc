/**
 * @file
 * Tests for the wait-state attribution layer: LatencyHistogram bucket
 * exactness and merge algebra, TaskProfiler latency conservation on
 * real runs, the pure-observer guarantee (profiled primary stats ==
 * unprofiled), and --jobs invariance of the blame study.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/blame.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "profile/profiler.hh"
#include "stats/stats.hh"
#include "test_apps.hh"

namespace {

using namespace jscale;
using stats::LatencyHistogram;
using test::TinyApp;
using test::TinyAppParams;
using test::VmHarness;

// ---------------------------------------------------------------------
// LatencyHistogram: bucket boundaries
// ---------------------------------------------------------------------

TEST(LatencyHistogram, SmallValuesGetExactBuckets)
{
    // Below 2 * kSubBuckets every value is its own bucket, so small
    // latencies (the common case in tick units) are stored exactly.
    for (std::uint64_t v = 0; v < 2 * LatencyHistogram::kSubBuckets;
         ++v) {
        EXPECT_EQ(LatencyHistogram::bucketIndex(v), v);
        EXPECT_EQ(LatencyHistogram::bucketLowerEdge(v), v);
    }
}

TEST(LatencyHistogram, BucketEdgesBracketTheirValues)
{
    const std::vector<std::uint64_t> probes = {
        0,      1,      63,       64,        65,         127,
        128,    1000,   4096,     4097,      1u << 20,   (1u << 20) + 1,
        999983, 1u << 31, (1ull << 40) - 1, 1ull << 40,
        (1ull << 63) - 1, 1ull << 63, ~0ull};
    for (const std::uint64_t v : probes) {
        const std::size_t i = LatencyHistogram::bucketIndex(v);
        ASSERT_LT(i, LatencyHistogram::kBuckets) << v;
        EXPECT_LE(LatencyHistogram::bucketLowerEdge(i), v) << v;
        if (i + 1 < LatencyHistogram::kBuckets)
            EXPECT_GT(LatencyHistogram::bucketLowerEdge(i + 1), v) << v;
    }
}

TEST(LatencyHistogram, LowerEdgesAreFixedPoints)
{
    // Every bucket's lower edge must map back to that bucket, and the
    // edge sequence must be strictly increasing.
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
        const std::uint64_t edge = LatencyHistogram::bucketLowerEdge(i);
        EXPECT_EQ(LatencyHistogram::bucketIndex(edge), i) << i;
        if (i > 0) {
            EXPECT_GT(edge, prev) << i;
        }
        prev = edge;
    }
}

// ---------------------------------------------------------------------
// LatencyHistogram: merge algebra
// ---------------------------------------------------------------------

void
expectIdentical(const LatencyHistogram &a, const LatencyHistogram &b)
{
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.sum(), b.sum());
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
    for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i)
        ASSERT_EQ(a.bucket(i), b.bucket(i)) << "bucket " << i;
}

LatencyHistogram
histOf(const std::vector<std::uint64_t> &values)
{
    LatencyHistogram h;
    for (const auto v : values)
        h.add(v);
    return h;
}

TEST(LatencyHistogram, MergeIsCommutative)
{
    const LatencyHistogram a = histOf({1, 5, 70, 1000, 1u << 20});
    const LatencyHistogram b = histOf({0, 63, 64, 999983});

    LatencyHistogram ab = a;
    ab.merge(b);
    LatencyHistogram ba = b;
    ba.merge(a);
    expectIdentical(ab, ba);
}

TEST(LatencyHistogram, MergeIsAssociative)
{
    const LatencyHistogram a = histOf({3, 3, 3, 129});
    const LatencyHistogram b = histOf({64, 65, 1ull << 40});
    const LatencyHistogram c = histOf({7, 4095, 4096});

    LatencyHistogram left = a; // (a + b) + c
    left.merge(b);
    left.merge(c);
    LatencyHistogram bc = b; // a + (b + c)
    bc.merge(c);
    LatencyHistogram right = a;
    right.merge(bc);
    expectIdentical(left, right);
}

TEST(LatencyHistogram, MergeMatchesDirectAccumulation)
{
    // Shard-and-merge (the --jobs path) must equal single-stream adds.
    const std::vector<std::uint64_t> all = {9, 12, 800, 800, 65536, 2};
    LatencyHistogram direct = histOf(all);
    LatencyHistogram s1 = histOf({9, 12, 800});
    const LatencyHistogram s2 = histOf({800, 65536, 2});
    s1.merge(s2);
    expectIdentical(direct, s1);
}

// ---------------------------------------------------------------------
// LatencyHistogram: quantile edge cases
// ---------------------------------------------------------------------

TEST(LatencyHistogram, QuantileOfEmptyIsZero)
{
    const LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.0), 0u);
    EXPECT_EQ(h.quantile(0.5), 0u);
    EXPECT_EQ(h.quantile(1.0), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
}

TEST(LatencyHistogram, QuantileOfSingleSampleIsThatSample)
{
    LatencyHistogram h;
    h.add(123456789);
    for (const double p : {0.0, 0.5, 0.99, 0.999, 1.0})
        EXPECT_EQ(h.quantile(p), 123456789u) << p;
}

TEST(LatencyHistogram, QuantileOfAllEqualSamplesIsExact)
{
    LatencyHistogram h;
    // 1000 falls in a log bucket whose lower edge is below it; the
    // min/max clamp must still return the exact value at every p.
    h.add(1000, 500);
    for (const double p : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
        EXPECT_EQ(h.quantile(p), 1000u) << p;
}

TEST(LatencyHistogram, QuantilesAreOrderStatistics)
{
    LatencyHistogram h;
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.add(v); // values 1..100, all exact buckets
    EXPECT_EQ(h.quantile(0.0), 1u);
    EXPECT_EQ(h.quantile(0.5), 50u);
    EXPECT_EQ(h.quantile(0.9), 90u);
    EXPECT_EQ(h.quantile(1.0), 100u);
}

TEST(LatencyHistogram, ZeroWeightAddIsNoOp)
{
    LatencyHistogram h;
    h.add(42, 0);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
}

// ---------------------------------------------------------------------
// TaskProfiler: latency conservation on real simulated runs
// ---------------------------------------------------------------------

TEST(TaskProfiler, BucketsSumToWallForEveryTask)
{
    TinyAppParams params;
    params.tasks_per_thread = 8;
    params.use_shared_lock = 20 * units::US; // force lock waits
    TinyApp app(params);

    VmHarness h(4);
    profile::TaskProfiler profiler;
    std::uint64_t checked = 0;
    profiler.setTaskSink([&checked](const jvm::SlowTaskRecord &rec) {
        Ticks sum = 0;
        for (std::size_t i = 0; i < jvm::kWaitBucketCount; ++i)
            sum += rec.buckets[i];
        ASSERT_EQ(sum, rec.wall())
            << "task " << rec.task << " on thread " << rec.thread;
        ++checked;
    });
    profiler.attach(h.vm);
    h.vm.run(app, 4);
    profiler.finishRun(h.sim.now());

    EXPECT_EQ(checked, 4u * 8u);
    const jvm::ProfileSummary s = profiler.summary();
    EXPECT_TRUE(s.enabled);
    EXPECT_EQ(s.tasks, checked);

    // Aggregate conservation: bucket totals sum to the latency sum.
    Ticks bucket_sum = 0;
    for (std::size_t i = 0; i < jvm::kWaitBucketCount; ++i)
        bucket_sum += s.bucket_total[i];
    EXPECT_EQ(bucket_sum, s.latency.sum());
    EXPECT_EQ(s.total(), bucket_sum);
}

TEST(TaskProfiler, ContendedLockDominatesBlame)
{
    TinyAppParams params;
    params.tasks_per_thread = 6;
    params.compute_per_task = 2 * units::US;
    params.use_shared_lock = 100 * units::US; // long critical section
    TinyApp app(params);

    VmHarness h(8);
    profile::TaskProfiler profiler;
    profiler.attach(h.vm);
    h.vm.run(app, 8);
    profiler.finishRun(h.sim.now());

    const jvm::ProfileSummary s = profiler.summary();
    EXPECT_EQ(s.dominantWait(), jvm::WaitBucket::Lock);
    EXPECT_GT(s.bucket_total[static_cast<std::size_t>(
                  jvm::WaitBucket::Lock)],
              0u);
    // The contended monitor shows up in the per-monitor wait list.
    ASSERT_FALSE(s.lock_waits.empty());
    EXPECT_GT(s.lock_waits.front().wait, 0u);
    EXPECT_GT(s.lock_waits.front().blocks, 0u);
}

TEST(TaskProfiler, SlowestTasksAreSortedAndCapped)
{
    TinyAppParams params;
    params.tasks_per_thread = 10;
    TinyApp app(params);

    VmHarness h(2);
    profile::TaskProfiler profiler;
    profiler.attach(h.vm);
    h.vm.run(app, 2);
    profiler.finishRun(h.sim.now());

    const jvm::ProfileSummary s = profiler.summary(3);
    ASSERT_EQ(s.slowest.size(), 3u);
    for (std::size_t i = 1; i < s.slowest.size(); ++i)
        EXPECT_GE(s.slowest[i - 1].wall(), s.slowest[i].wall());
}

// ---------------------------------------------------------------------
// Experiment harness: pure-observer and --jobs guarantees
// ---------------------------------------------------------------------

core::ExperimentConfig
fastConfig()
{
    core::ExperimentConfig cfg;
    cfg.workload_scale = 0.05;
    return cfg;
}

TEST(ProfiledExperiment, PrimaryStatsIdenticalToUnprofiled)
{
    core::ExperimentConfig plain_cfg = fastConfig();
    core::ExperimentConfig prof_cfg = fastConfig();
    prof_cfg.profile = true;

    core::ExperimentRunner plain(plain_cfg);
    core::ExperimentRunner profiled(prof_cfg);
    const jvm::RunResult a = plain.runApp("xalan", 4);
    const jvm::RunResult b = profiled.runApp("xalan", 4);

    EXPECT_FALSE(a.profile.enabled);
    EXPECT_TRUE(b.profile.enabled);

    // The profiler is a pure observer: every primary stat must be
    // byte-identical with and without it.
    std::ostringstream sa;
    std::ostringstream sb;
    core::runStatSnapshot(a).printCsv(sa);
    core::runStatSnapshot(b).printCsv(sb);
    EXPECT_EQ(sa.str(), sb.str());
}

TEST(ProfiledExperiment, ProfileFillsSummaryAndReports)
{
    core::ExperimentConfig cfg = fastConfig();
    cfg.profile = true;
    cfg.profile_topk = 4;
    core::ExperimentRunner runner(cfg);
    const jvm::RunResult r = runner.runApp("h2", 8);

    ASSERT_TRUE(r.profile.enabled);
    EXPECT_EQ(r.profile.tasks, r.total_tasks);
    EXPECT_LE(r.profile.slowest.size(), 4u);
    EXPECT_EQ(r.profile.latency.count(), r.profile.tasks);

    // The blame reports render without blowing up and carry the
    // conservation identity through to the CSV.
    std::ostringstream table;
    core::printBlameTable(table, r);
    EXPECT_NE(table.str().find("task wall"), std::string::npos);
    std::ostringstream csv;
    core::writeBlameCsv(csv, r);
    EXPECT_NE(csv.str().find("p99_ns"), std::string::npos);
    std::ostringstream hist;
    core::writeProfileHistogramCsv(hist, r);
    EXPECT_NE(hist.str().find("lower_edge_ns"), std::string::npos);
}

TEST(ProfiledExperiment, BlameStudyIsJobsInvariant)
{
    core::BlameConfig seq;
    seq.apps = {"h2", "lusearch"};
    seq.threads = {2, 4};
    seq.base = fastConfig();
    seq.base.jobs = 1;
    core::BlameConfig par = seq;
    par.base.jobs = 4;

    const core::BlameStudy a = core::runBlameStudy(seq);
    const core::BlameStudy b = core::runBlameStudy(par);

    std::ostringstream ca;
    std::ostringstream cb;
    core::writeBlameStudyCsv(ca, a);
    core::writeBlameStudyCsv(cb, b);
    EXPECT_EQ(ca.str(), cb.str());
    EXPECT_FALSE(ca.str().empty());
}

} // namespace
