/**
 * @file
 * Tests for monitors and channels: mutual exclusion, FIFO handoff,
 * contention accounting and semaphore semantics — verified through
 * full VM runs with probe listeners (the monitors' wake path needs a
 * live scheduler).
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "test_apps.hh"

namespace {

using namespace jscale;
using test::TinyApp;
using test::TinyAppParams;
using test::VmHarness;

/** Listener asserting monitor mutual exclusion as events stream by. */
struct MutexProbe : jvm::RuntimeListener
{
    std::map<jvm::MonitorId, std::int64_t> holders;
    std::map<jvm::MonitorId, std::uint64_t> acquires;
    std::map<jvm::MonitorId, std::uint64_t> releases;
    std::map<jvm::MonitorId, std::uint64_t> contentions;
    bool violated = false;

    void
    onMonitorAcquire(jvm::MutatorIndex, jvm::MonitorId m, bool,
                     Ticks) override
    {
        if (++holders[m] > 1)
            violated = true;
        ++acquires[m];
    }

    void
    onMonitorRelease(jvm::MutatorIndex, jvm::MonitorId m, Ticks) override
    {
        if (--holders[m] < 0)
            violated = true;
        ++releases[m];
    }

    void
    onMonitorContended(jvm::MutatorIndex, jvm::MonitorId m,
                       Ticks) override
    {
        ++contentions[m];
    }
};

TEST(Monitor, MutualExclusionHoldsUnderContention)
{
    VmHarness h(8);
    MutexProbe probe;
    h.vm.listeners().add(&probe);
    TinyAppParams p;
    p.tasks_per_thread = 50;
    p.compute_per_task = 2 * units::US;
    p.use_shared_lock = 3000; // hot lock
    TinyApp app(p);
    const jvm::RunResult r = h.vm.run(app, 8);
    EXPECT_FALSE(probe.violated);
    // Every acquisition is eventually released.
    for (const auto &[m, acq] : probe.acquires)
        EXPECT_EQ(acq, probe.releases[m]);
    // Eight threads on one hot lock must contend.
    EXPECT_GT(r.locks.contentions, 0u);
    EXPECT_EQ(r.locks.acquisitions, 8u * 50u);
}

TEST(Monitor, UncontendedSingleThreadNeverContends)
{
    VmHarness h(2);
    TinyAppParams p;
    p.tasks_per_thread = 30;
    p.use_shared_lock = 1000;
    TinyApp app(p);
    const jvm::RunResult r = h.vm.run(app, 1);
    EXPECT_EQ(r.locks.acquisitions, 30u);
    EXPECT_EQ(r.locks.contentions, 0u);
    EXPECT_EQ(r.locks.block_time, 0u);
}

TEST(Monitor, ContentionCountsAndBlockTimeConsistent)
{
    VmHarness h(8);
    MutexProbe probe;
    h.vm.listeners().add(&probe);
    TinyAppParams p;
    p.tasks_per_thread = 40;
    p.compute_per_task = 1 * units::US;
    p.use_shared_lock = 5000;
    TinyApp app(p);
    const jvm::RunResult r = h.vm.run(app, 8);
    std::uint64_t probed = 0;
    for (const auto &[m, c] : probe.contentions)
        probed += c;
    EXPECT_EQ(probed, r.locks.contentions);
    EXPECT_GT(r.locks.block_time, 0u);
    EXPECT_LT(r.locks.contentions, r.locks.acquisitions);
}

TEST(Monitor, MoreThreadsMoreContention)
{
    auto contentions = [](std::uint32_t threads) {
        VmHarness h(8);
        TinyAppParams p;
        p.tasks_per_thread = 400 / threads; // fixed total lock traffic
        p.compute_per_task = 2 * units::US;
        p.use_shared_lock = 4000;
        TinyApp app(p);
        return h.vm.run(app, threads).locks.contentions;
    };
    const auto c2 = contentions(2);
    const auto c8 = contentions(8);
    EXPECT_GT(c8, c2);
}

/** Pipeline app exercising channel (semaphore) semantics. */
class ChannelApp : public jvm::ApplicationModel
{
  public:
    std::string appName() const override { return "channel-app"; }

    void
    setup(jvm::AppContext &ctx) override
    {
        chan_ = ctx.createChannel("units", 0);
    }

    std::unique_ptr<jvm::ActionSource>
    threadSource(std::uint32_t idx, jvm::AppContext &) override
    {
        return std::make_unique<Src>(chan_, idx);
    }

    static constexpr int kUnits = 25;

  private:
    class Src : public jvm::ActionSource
    {
      public:
        Src(jvm::ChannelId chan, std::uint32_t idx)
        {
            using jvm::Action;
            if (idx == 0) { // producer
                for (int i = 0; i < kUnits; ++i) {
                    script_.push_back(Action::compute(5 * units::US));
                    script_.push_back(Action::channelPost(chan));
                }
            } else { // consumer (single)
                for (int i = 0; i < kUnits; ++i) {
                    script_.push_back(Action::channelAcquire(chan));
                    script_.push_back(Action::compute(2 * units::US));
                    script_.push_back(Action::taskDone());
                }
            }
            script_.push_back(Action::end());
        }

        jvm::Action
        next() override
        {
            return script_[pos_ < script_.size() ? pos_++
                                                 : script_.size() - 1];
        }

      private:
        std::vector<jvm::Action> script_;
        std::size_t pos_ = 0;
    };

    jvm::ChannelId chan_ = 0;
};

TEST(WaitChannel, ProducerConsumerCompletes)
{
    VmHarness h(2);
    ChannelApp app;
    const jvm::RunResult r = h.vm.run(app, 2);
    EXPECT_EQ(r.total_tasks,
              static_cast<std::uint64_t>(ChannelApp::kUnits));
    // The consumer blocked at least once waiting for the producer.
    Ticks consumer_blocked = 0;
    for (const auto &ts : r.thread_summaries) {
        if (ts.kind == os::ThreadKind::Mutator &&
            ts.tasks_completed > 0) {
            consumer_blocked = ts.blocked_time;
        }
    }
    EXPECT_GT(consumer_blocked, 0u);
}

TEST(WaitChannel, PermitsCarryAcrossWhenPostedFirst)
{
    // If the producer runs far ahead, permits accumulate and the
    // consumer never blocks at the end; totals still match.
    VmHarness h(1); // single core: producer (thread 0) runs first
    ChannelApp app;
    const jvm::RunResult r = h.vm.run(app, 2);
    EXPECT_EQ(r.total_tasks,
              static_cast<std::uint64_t>(ChannelApp::kUnits));
}

TEST(LockStates, SingleThreadStaysBiased)
{
    VmHarness h(2);
    TinyAppParams p;
    p.tasks_per_thread = 25;
    p.use_shared_lock = 1000;
    TinyApp app(p);
    const jvm::RunResult r = h.vm.run(app, 1);
    EXPECT_EQ(r.locks.biased_acquisitions, 25u);
    EXPECT_EQ(r.locks.thin_acquisitions, 0u);
    EXPECT_EQ(r.locks.fat_acquisitions, 0u);
    EXPECT_EQ(r.locks.bias_revocations, 0u);
    EXPECT_EQ(r.locks.inflations, 0u);
}

/** Inert waiter for driving a Monitor directly (no blocking paths). */
struct DummyWaiter : jvm::MonitorWaiter
{
    explicit DummyWaiter(jvm::MutatorIndex idx) : idx(idx) {}

    void monitorGranted(jvm::MonitorId) override {}
    void channelGranted(jvm::ChannelId) override {}
    os::OsThread *osThread() const override { return nullptr; }
    jvm::MutatorIndex mutatorIndex() const override { return idx; }

    jvm::MutatorIndex idx;
};

TEST(LockStates, UncontendedSecondThreadRevokesBias)
{
    VmHarness h(2); // provides the scheduler the monitor ctor needs
    jvm::MonitorTable table(h.sched, nullptr);
    jvm::Monitor &m = table.monitor(table.createMonitor("m"));
    DummyWaiter a(0);
    DummyWaiter b(1);

    ASSERT_TRUE(m.acquire(&a, 0)); // biases toward a
    EXPECT_EQ(m.state(), jvm::LockState::Biased);
    m.release(&a, 10);
    ASSERT_TRUE(m.acquire(&a, 20)); // re-acquire under bias
    m.release(&a, 30);
    EXPECT_EQ(m.monStats().biased_acquisitions, 2u);

    ASSERT_TRUE(m.acquire(&b, 40)); // uncontended foreign acquire
    EXPECT_EQ(m.state(), jvm::LockState::Thin);
    EXPECT_EQ(m.monStats().bias_revocations, 1u);
    EXPECT_EQ(m.monStats().thin_acquisitions, 1u);
    m.release(&b, 50);

    ASSERT_TRUE(m.acquire(&a, 60)); // stays thin, no re-bias
    EXPECT_EQ(m.state(), jvm::LockState::Thin);
    EXPECT_EQ(m.monStats().thin_acquisitions, 2u);
    m.release(&a, 70);
    EXPECT_EQ(m.monStats().inflations, 0u);
}

TEST(LockStates, ContentionInflatesExactlyOnce)
{
    VmHarness h(8);
    TinyAppParams p;
    p.tasks_per_thread = 40;
    p.compute_per_task = 1 * units::US;
    p.use_shared_lock = 5000; // hot: guaranteed contention
    TinyApp app(p);
    const jvm::RunResult r = h.vm.run(app, 8);
    EXPECT_EQ(r.locks.inflations, 1u); // one shared lock, inflated once
    EXPECT_GT(r.locks.fat_acquisitions, 0u);
    // Once fat, contended handoffs count as fat acquisitions.
    EXPECT_GE(r.locks.fat_acquisitions, r.locks.contentions);
}

TEST(LockStates, BreakdownSumsToTotalAcquisitions)
{
    VmHarness h(8);
    TinyAppParams p;
    p.tasks_per_thread = 30;
    p.compute_per_task = 4 * units::US;
    p.use_shared_lock = 2000;
    TinyApp app(p);
    const jvm::RunResult r = h.vm.run(app, 6);
    EXPECT_EQ(r.locks.biased_acquisitions + r.locks.thin_acquisitions +
                  r.locks.fat_acquisitions,
              r.locks.acquisitions);
}

} // namespace
