/**
 * @file
 * Tests for the OS scheduler: the burst protocol, preemption and
 * truncation, accounting, stop-the-world, stealing and policies.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "machine/machine.hh"
#include "os/policy.hh"
#include "os/scheduler.hh"
#include "sim/simulation.hh"

namespace {

using namespace jscale;
using os::BurstOutcome;
using os::OsThread;
using os::Scheduler;
using os::SchedulerConfig;
using os::ThreadKind;
using os::ThreadState;

/** Scripted scheduler client: a sequence of (work, outcome) steps. */
class ScriptClient : public os::SchedClient
{
  public:
    struct Step
    {
        Ticks work;
        BurstOutcome outcome;
    };

    ScriptClient(std::string name, std::vector<Step> steps)
        : name_(std::move(name)), steps_(std::move(steps))
    {}

    Ticks
    planBurst(Ticks, Ticks limit) override
    {
        if (remaining_ == 0)
            remaining_ = steps_[step_].work;
        return std::min(remaining_, limit);
    }

    BurstOutcome
    finishBurst(Ticks now, Ticks elapsed) override
    {
        remaining_ -= elapsed;
        if (remaining_ > 0)
            return BurstOutcome::Ready;
        const BurstOutcome out = steps_[step_].outcome;
        ++step_;
        last_finish_ = now;
        if (out == BurstOutcome::Finished)
            finished_ = true;
        return out;
    }

    std::string clientName() const override { return name_; }
    bool urgent() const override { return urgent_; }

    bool finished() const { return finished_; }
    Ticks lastFinish() const { return last_finish_; }
    std::size_t stepsDone() const { return step_; }
    void setUrgent(bool u) { urgent_ = u; }

  private:
    std::string name_;
    std::vector<Step> steps_;
    std::size_t step_ = 0;
    Ticks remaining_ = 0;
    Ticks last_finish_ = 0;
    bool finished_ = false;
    bool urgent_ = false;
};

/** Bundle of simulation, machine and scheduler for tests. */
struct Bundle
{
    explicit Bundle(std::uint32_t enabled_cores,
                    SchedulerConfig cfg = {})
        : sim(1), mach(machine::Machine::testMachine_2p8c()),
          sched((mach.enableCores(enabled_cores), sim), mach, cfg)
    {}

    sim::Simulation sim;
    machine::Machine mach;
    Scheduler sched;
};

std::vector<ScriptClient::Step>
computeSteps(int n, Ticks each)
{
    std::vector<ScriptClient::Step> steps;
    for (int i = 0; i < n - 1; ++i)
        steps.push_back({each, BurstOutcome::Ready});
    steps.push_back({each, BurstOutcome::Finished});
    return steps;
}

TEST(Scheduler, SingleThreadRunsToCompletion)
{
    Bundle b(1);
    ScriptClient c("t0", computeSteps(5, 1000));
    OsThread *t = b.sched.registerThread(&c, ThreadKind::Mutator);
    b.sched.start(t);
    b.sim.run();
    EXPECT_TRUE(c.finished());
    EXPECT_EQ(t->state(), ThreadState::Finished);
    EXPECT_EQ(t->cpuTime(), 5000u);
    EXPECT_EQ(b.sched.finishedCount(), 1u);
}

TEST(Scheduler, FirstDispatchPaysContextSwitch)
{
    Bundle b(1);
    ScriptClient c("t0", computeSteps(1, 1000));
    OsThread *t = b.sched.registerThread(&c, ThreadKind::Mutator);
    b.sched.start(t);
    b.sim.run();
    // Wall clock = switch-in + work.
    EXPECT_EQ(c.lastFinish(),
              b.mach.config().context_switch_cost + 1000);
}

TEST(Scheduler, TwoThreadsOneCoreShareAndFinish)
{
    Bundle b(1);
    ScriptClient c0("t0", computeSteps(10, 50 * units::US));
    ScriptClient c1("t1", computeSteps(10, 50 * units::US));
    OsThread *t0 = b.sched.registerThread(&c0, ThreadKind::Mutator, 0);
    OsThread *t1 = b.sched.registerThread(&c1, ThreadKind::Mutator, 0);
    b.sched.start(t0);
    b.sched.start(t1);
    b.sim.run();
    EXPECT_TRUE(c0.finished());
    EXPECT_TRUE(c1.finished());
    EXPECT_EQ(t0->cpuTime(), 500 * units::US);
    EXPECT_EQ(t1->cpuTime(), 500 * units::US);
    // The second thread waited while the first ran.
    EXPECT_GT(t1->readyTime(), 0u);
    EXPECT_GT(b.sched.schedStats().context_switches, 1u);
}

TEST(Scheduler, WorkConservation)
{
    // 6 threads on 2 cores: total wall >= total work / cores and every
    // thread's cpu time equals its scripted work.
    Bundle b(2);
    std::vector<std::unique_ptr<ScriptClient>> clients;
    std::vector<OsThread *> threads;
    const Ticks each = 20 * units::US;
    for (int i = 0; i < 6; ++i) {
        clients.push_back(std::make_unique<ScriptClient>(
            "t" + std::to_string(i), computeSteps(8, each)));
        threads.push_back(b.sched.registerThread(
            clients.back().get(), ThreadKind::Mutator,
            static_cast<machine::CoreId>(i % 2)));
    }
    for (auto *t : threads)
        b.sched.start(t);
    b.sim.run();
    Ticks total_cpu = 0;
    for (std::size_t i = 0; i < threads.size(); ++i) {
        EXPECT_TRUE(clients[i]->finished());
        EXPECT_EQ(threads[i]->cpuTime(), 8 * each);
        total_cpu += threads[i]->cpuTime();
    }
    EXPECT_GE(b.sim.now(), total_cpu / 2);
}

TEST(Scheduler, BlockedThreadWaitsForWake)
{
    Bundle b(1);
    ScriptClient c("t0", {{1000, BurstOutcome::Blocked},
                          {1000, BurstOutcome::Finished}});
    OsThread *t = b.sched.registerThread(&c, ThreadKind::Mutator);
    b.sched.start(t);
    b.sim.run();
    EXPECT_FALSE(c.finished());
    EXPECT_EQ(t->state(), ThreadState::Blocked);
    const Ticks blocked_at = b.sim.now();
    b.sim.scheduleAfter(5000, [&] { b.sched.wake(t); }, "waker");
    b.sim.run();
    EXPECT_TRUE(c.finished());
    EXPECT_GE(t->blockedTime(), 5000u);
    EXPECT_GT(c.lastFinish(), blocked_at + 5000);
}

TEST(Scheduler, WakeAtIsTimedSleep)
{
    Bundle b(1);
    ScriptClient c("t0", {{1000, BurstOutcome::Blocked},
                          {1000, BurstOutcome::Finished}});
    OsThread *t = b.sched.registerThread(&c, ThreadKind::Mutator);
    // The client requests the timed wake from within its burst in real
    // code; doing it just before produces the same protocol state.
    b.sched.start(t);
    // Let the first burst run, then arrange the timed wake on block.
    b.sim.scheduleAfter(1, [&] {}, "noop");
    b.sim.run();
    ASSERT_EQ(t->state(), ThreadState::Blocked);
    // Emulate wakeAt usage: pending_sleep applies to the *next* block,
    // so here we simply wake explicitly after a delay.
    b.sim.scheduleAfter(3000, [&] { b.sched.wake(t); }, "timer");
    b.sim.run();
    EXPECT_TRUE(c.finished());
}

TEST(Scheduler, WakeOnRunningThreadDies)
{
    Bundle b(1);
    ScriptClient c("t0", computeSteps(2, 1 * units::MS));
    OsThread *t = b.sched.registerThread(&c, ThreadKind::Mutator);
    b.sched.start(t);
    EXPECT_DEATH(b.sched.wake(t), "wake");
}

TEST(Scheduler, StopTheWorldParksEverything)
{
    Bundle b(2);
    ScriptClient c0("t0", computeSteps(1000, 100 * units::US));
    ScriptClient c1("t1", computeSteps(1000, 100 * units::US));
    OsThread *t0 = b.sched.registerThread(&c0, ThreadKind::Mutator);
    OsThread *t1 = b.sched.registerThread(&c1, ThreadKind::Mutator);
    b.sched.start(t0);
    b.sched.start(t1);
    b.sim.run(1 * units::MS);

    bool parked = false;
    Ticks parked_at = 0;
    b.sched.stopTheWorld([&] {
        parked = true;
        parked_at = b.sim.now();
        EXPECT_EQ(b.sched.runningCount(), 0u);
    });
    const Ticks requested_at = b.sim.now();
    // Run until parked; both threads must be truncated at a poll point.
    while (!parked && b.sim.step()) {
    }
    EXPECT_TRUE(parked);
    EXPECT_TRUE(b.sched.worldStopped());
    const SchedulerConfig &cfg = b.sched.config();
    EXPECT_LE(parked_at - requested_at, cfg.max_poll_latency + 1);

    // No dispatch while stopped.
    const auto dispatches_before = b.sched.schedStats().dispatches;
    b.sim.run(b.sim.now() + 1 * units::MS);
    EXPECT_EQ(b.sched.schedStats().dispatches, dispatches_before);

    b.sched.resumeWorld();
    b.sim.run();
    EXPECT_TRUE(c0.finished());
    EXPECT_TRUE(c1.finished());
}

TEST(Scheduler, StopTheWorldWithNothingRunningFiresImmediately)
{
    Bundle b(1);
    bool parked = false;
    b.sched.stopTheWorld([&] { parked = true; });
    b.sim.run();
    EXPECT_TRUE(parked);
    b.sched.resumeWorld();
}

TEST(Scheduler, NestedStopTheWorldDies)
{
    Bundle b(1);
    b.sched.stopTheWorld([] {});
    EXPECT_DEATH(b.sched.stopTheWorld([] {}), "nested");
}

TEST(Scheduler, FinishedCallbackFires)
{
    Bundle b(1);
    ScriptClient c("t0", computeSteps(1, 100));
    OsThread *t = b.sched.registerThread(&c, ThreadKind::Mutator);
    OsThread *seen = nullptr;
    b.sched.setThreadFinishedCallback(
        [&seen](OsThread *done) { seen = done; });
    b.sched.start(t);
    b.sim.run();
    EXPECT_EQ(seen, t);
}

TEST(Scheduler, IdleCoresStealQueuedWork)
{
    Bundle b(4);
    // All threads homed on core 0; idle cores 1-3 must steal.
    std::vector<std::unique_ptr<ScriptClient>> clients;
    for (int i = 0; i < 4; ++i) {
        clients.push_back(std::make_unique<ScriptClient>(
            "t" + std::to_string(i), computeSteps(4, 50 * units::US)));
        b.sched.start(
            b.sched.registerThread(clients.back().get(),
                                   ThreadKind::Mutator, 0));
    }
    b.sim.run();
    for (auto &c : clients)
        EXPECT_TRUE(c->finished());
    EXPECT_GT(b.sched.schedStats().steals, 0u);
    // With stealing, the run completes much faster than serial.
    EXPECT_LT(b.sim.now(), 4 * 4 * 50 * units::US);
}

TEST(Scheduler, StealingCanBeDisabled)
{
    SchedulerConfig cfg;
    cfg.stealing = false;
    Bundle b(4, cfg);
    std::vector<std::unique_ptr<ScriptClient>> clients;
    for (int i = 0; i < 4; ++i) {
        clients.push_back(std::make_unique<ScriptClient>(
            "t" + std::to_string(i), computeSteps(4, 50 * units::US)));
        b.sched.start(
            b.sched.registerThread(clients.back().get(),
                                   ThreadKind::Mutator, 0));
    }
    b.sim.run();
    EXPECT_EQ(b.sched.schedStats().steals, 0u);
    // Serialized on core 0.
    EXPECT_GE(b.sim.now(), 4 * 4 * 50 * units::US);
}

TEST(Scheduler, RoundRobinHomeAssignment)
{
    Bundle b(4);
    ScriptClient c("x", computeSteps(1, 10));
    const OsThread *t0 = b.sched.registerThread(&c, ThreadKind::Mutator);
    const OsThread *t1 = b.sched.registerThread(&c, ThreadKind::Mutator);
    const OsThread *t4 = nullptr;
    b.sched.registerThread(&c, ThreadKind::Mutator);
    b.sched.registerThread(&c, ThreadKind::Mutator);
    t4 = b.sched.registerThread(&c, ThreadKind::Mutator);
    EXPECT_EQ(t0->homeCore(), 0u);
    EXPECT_EQ(t1->homeCore(), 1u);
    EXPECT_EQ(t4->homeCore(), 0u); // wraps around 4 enabled cores
}

TEST(Scheduler, BiasedPolicyGatesInactiveGroups)
{
    Bundle b(2);
    b.sched.setPolicy(std::make_unique<os::BiasedPolicy>(
        2, 10 * units::MS));
    ScriptClient c0("g0", computeSteps(1, 1000));
    ScriptClient c1("g1", computeSteps(1, 1000));
    OsThread *t0 = b.sched.registerThread(&c0, ThreadKind::Mutator, 0);
    OsThread *t1 = b.sched.registerThread(&c1, ThreadKind::Mutator, 1);
    b.sched.start(t0);
    b.sched.start(t1);
    b.sim.run(5 * units::MS);
    // Group 0 is active during the first quantum; only t0 ran.
    EXPECT_TRUE(c0.finished());
    EXPECT_FALSE(c1.finished());
    // Advance into the next phase and kick.
    b.sim.scheduleAt(11 * units::MS, [&] { b.sched.kickAll(); }, "kick");
    b.sim.run();
    EXPECT_TRUE(c1.finished());
    (void)t1;
}

TEST(Scheduler, UrgentOverridesGating)
{
    Bundle b(2);
    b.sched.setPolicy(std::make_unique<os::BiasedPolicy>(
        2, 10 * units::MS));
    ScriptClient c1("g1", computeSteps(1, 1000));
    // Register a placeholder in group 0 so c1 lands in group 1.
    ScriptClient c0("g0", computeSteps(1, 1000));
    b.sched.registerThread(&c0, ThreadKind::Mutator, 0);
    OsThread *t1 = b.sched.registerThread(&c1, ThreadKind::Mutator, 1);
    c1.setUrgent(true);
    b.sched.start(t1);
    b.sim.run(5 * units::MS);
    EXPECT_TRUE(c1.finished()); // ran despite its group being inactive
}

TEST(Scheduler, HelpersUnaffectedByBias)
{
    Bundle b(2);
    b.sched.setPolicy(std::make_unique<os::BiasedPolicy>(
        4, 10 * units::MS));
    ScriptClient helper("helper", computeSteps(1, 1000));
    OsThread *t = b.sched.registerThread(&helper, ThreadKind::Helper, 1);
    b.sched.start(t);
    b.sim.run(5 * units::MS);
    EXPECT_TRUE(helper.finished());
}

} // namespace
