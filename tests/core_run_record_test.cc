/**
 * @file
 * RunResult codec tests: a full simulated result roundtrips through the
 * "jscale-run v1" text record losslessly, and the reader rejects every
 * flavor of bad record — wrong header, foreign key or fingerprint,
 * torn writes, garbage — instead of silently mixing results.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/experiment.hh"
#include "core/report.hh"
#include "core/run_record.hh"

namespace {

using namespace jscale;

jvm::RunResult
simulate(const std::string &app, std::uint32_t threads)
{
    core::ExperimentConfig cfg;
    cfg.workload_scale = 0.05;
    cfg.seed = 23;
    cfg.profile = true;
    core::ExperimentRunner runner(cfg);
    return runner.runApp(app, threads);
}

std::string
record(const jvm::RunResult &r, const std::string &key = "k",
       const std::string &fp = "fp")
{
    std::ostringstream os;
    core::writeRunRecord(os, key, fp, r);
    return os.str();
}

TEST(RunRecord, FullResultRoundtripsToIdenticalBytes)
{
    // A profiled run populates the deep sections (Welford summaries,
    // histograms, per-thread rows, blame profile); re-serializing the
    // parsed record must reproduce the original bytes exactly.
    const jvm::RunResult original = simulate("h2", 8);
    const std::string bytes = record(original);

    std::istringstream is(bytes);
    jvm::RunResult restored;
    std::string err;
    ASSERT_TRUE(core::readRunRecord(is, "k", "fp", restored, err)) << err;
    EXPECT_EQ(record(restored), bytes);
}

TEST(RunRecord, RestoredResultRendersIdentically)
{
    // Byte-identical merge output requires the renderer to see exactly
    // the same values, not just "close" doubles.
    const jvm::RunResult original = simulate("sunflow", 4);
    std::istringstream is(record(original));
    jvm::RunResult restored;
    std::string err;
    ASSERT_TRUE(core::readRunRecord(is, "k", "fp", restored, err)) << err;

    std::ostringstream a, b;
    const core::SweepSet sa{{original.app_name, {original}}};
    const core::SweepSet sb{{restored.app_name, {restored}}};
    core::printScalabilityTable(a, sa);
    core::printBlameTable(a, original);
    core::writeBlameCsv(a, original);
    core::printScalabilityTable(b, sb);
    core::printBlameTable(b, restored);
    core::writeBlameCsv(b, restored);
    EXPECT_EQ(a.str(), b.str());
}

TEST(RunRecord, RejectsWrongHeader)
{
    std::istringstream is("jscale-run v99\nkey k\nend\n");
    jvm::RunResult out;
    std::string err;
    EXPECT_FALSE(core::readRunRecord(is, "k", "fp", out, err));
    EXPECT_FALSE(err.empty());
}

TEST(RunRecord, RejectsForeignKeyAndFingerprint)
{
    const std::string bytes = record(simulate("xalan", 2));
    jvm::RunResult out;
    std::string err;
    {
        std::istringstream is(bytes);
        EXPECT_FALSE(core::readRunRecord(is, "other-key", "fp", out, err));
    }
    {
        std::istringstream is(bytes);
        EXPECT_FALSE(core::readRunRecord(is, "k", "other-fp", out, err));
    }
}

TEST(RunRecord, RejectsTornRecord)
{
    // A record cut off anywhere before its "end" trailer reads as a
    // miss: the atomic-rename protocol should prevent this, but the
    // reader is the last line of defense.
    const std::string bytes = record(simulate("xalan", 2));
    jvm::RunResult out;
    std::string err;
    for (const double frac : {0.25, 0.5, 0.9}) {
        std::istringstream is(
            bytes.substr(0, static_cast<std::size_t>(bytes.size() * frac)));
        EXPECT_FALSE(core::readRunRecord(is, "k", "fp", out, err)) << frac;
    }
}

TEST(RunRecord, RejectsGarbage)
{
    jvm::RunResult out;
    std::string err;
    {
        std::istringstream is("");
        EXPECT_FALSE(core::readRunRecord(is, "k", "fp", out, err));
    }
    {
        std::istringstream is("\x01\x02\x03 not a record");
        EXPECT_FALSE(core::readRunRecord(is, "k", "fp", out, err));
    }
}

TEST(RunRecord, FailedMarkerRoundtrips)
{
    jvm::RunResult marker;
    marker.app_name = "eclipse";
    marker.threads = 16;
    marker.run_error = "sim-time guard: exceeded budget";
    const std::string bytes = record(marker);

    std::istringstream is(bytes);
    jvm::RunResult restored;
    std::string err;
    ASSERT_TRUE(core::readRunRecord(is, "k", "fp", restored, err)) << err;
    EXPECT_EQ(restored.run_error, marker.run_error);
    EXPECT_EQ(record(restored), bytes);
}

} // namespace
