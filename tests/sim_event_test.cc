/**
 * @file
 * Tests for the discrete-event kernel: ordering guarantees, tie
 * breaking, cancellation, rescheduling and the simulation loop.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "base/random.hh"
#include "sim/event.hh"
#include "sim/simulation.hh"

namespace {

using namespace jscale;
using sim::Event;
using sim::EventQueue;
using sim::Simulation;

/** Test event recording its firing into a shared log. */
class LogEvent : public Event
{
  public:
    LogEvent(std::vector<int> &log, int id) : log_(log), id_(id) {}

    void process() override { log_.push_back(id_); }
    std::string name() const override { return "log-event"; }

  private:
    std::vector<int> &log_;
    int id_;
};

TEST(EventQueue, ProcessesInTimeOrder)
{
    Simulation sim;
    std::vector<int> log;
    LogEvent e1(log, 1);
    LogEvent e2(log, 2);
    LogEvent e3(log, 3);
    sim.schedule(&e2, 20);
    sim.schedule(&e1, 10);
    sim.schedule(&e3, 30);
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), 30u);
}

TEST(EventQueue, SameTickFiresInScheduleOrder)
{
    Simulation sim;
    std::vector<int> log;
    std::vector<std::unique_ptr<LogEvent>> events;
    for (int i = 0; i < 10; ++i) {
        events.push_back(std::make_unique<LogEvent>(log, i));
        sim.schedule(events.back().get(), 5);
    }
    sim.run();
    std::vector<int> expect(10);
    for (int i = 0; i < 10; ++i)
        expect[i] = i;
    EXPECT_EQ(log, expect);
}

TEST(EventQueue, DescheduleCancels)
{
    Simulation sim;
    std::vector<int> log;
    LogEvent keep(log, 1);
    LogEvent cancel(log, 2);
    sim.schedule(&keep, 10);
    sim.schedule(&cancel, 5);
    EXPECT_TRUE(cancel.scheduled());
    sim.queue().deschedule(&cancel);
    EXPECT_FALSE(cancel.scheduled());
    sim.run();
    EXPECT_EQ(log, std::vector<int>{1});
}

TEST(EventQueue, DescheduleIdempotent)
{
    Simulation sim;
    std::vector<int> log;
    LogEvent e(log, 1);
    sim.schedule(&e, 10);
    sim.queue().deschedule(&e);
    sim.queue().deschedule(&e); // no-op
    EXPECT_TRUE(sim.queue().empty());
}

TEST(EventQueue, RescheduleMovesEvent)
{
    Simulation sim;
    std::vector<int> log;
    LogEvent a(log, 1);
    LogEvent b(log, 2);
    sim.schedule(&a, 10);
    sim.schedule(&b, 20);
    sim.queue().reschedule(&b, 5); // b now fires first
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
}

TEST(EventQueue, RescheduleAfterFiringWorks)
{
    Simulation sim;
    std::vector<int> log;
    LogEvent e(log, 7);
    sim.schedule(&e, 1);
    sim.run();
    sim.schedule(&e, sim.now() + 1); // reuse is allowed once unscheduled
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{7, 7}));
}

TEST(EventQueue, DoubleScheduleDies)
{
    Simulation sim;
    std::vector<int> log;
    LogEvent e(log, 1);
    sim.schedule(&e, 10);
    EXPECT_DEATH(sim.schedule(&e, 20), "already scheduled");
    sim.queue().deschedule(&e);
}

TEST(EventQueue, SizeTracksLiveEvents)
{
    Simulation sim;
    std::vector<int> log;
    LogEvent a(log, 1);
    LogEvent b(log, 2);
    EXPECT_TRUE(sim.queue().empty());
    sim.schedule(&a, 1);
    sim.schedule(&b, 2);
    EXPECT_EQ(sim.queue().size(), 2u);
    sim.queue().deschedule(&a);
    EXPECT_EQ(sim.queue().size(), 1u);
    sim.run();
    EXPECT_TRUE(sim.queue().empty());
}

TEST(Simulation, SchedulingInThePastDies)
{
    Simulation sim;
    sim.scheduleAfter(100, [] {}, "later");
    sim.run();
    std::vector<int> log;
    LogEvent e(log, 1);
    EXPECT_DEATH(sim.schedule(&e, 5), "in the past");
}

TEST(Simulation, LambdaEventsSelfDelete)
{
    Simulation sim;
    int fired = 0;
    for (int i = 0; i < 100; ++i)
        sim.scheduleAfter(i, [&fired] { ++fired; }, "inc");
    sim.run();
    EXPECT_EQ(fired, 100);
    // ASAN (when enabled) verifies no leaks; here we check the queue
    // drained.
    EXPECT_TRUE(sim.queue().empty());
}

TEST(Simulation, RunUntilStopsAtLimit)
{
    Simulation sim;
    int fired = 0;
    sim.scheduleAfter(10, [&fired] { ++fired; }, "a");
    sim.scheduleAfter(1000, [&fired] { ++fired; }, "b");
    sim.run(100);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), 100u);
    sim.run();
    EXPECT_EQ(fired, 2);
}

TEST(Simulation, RequestStopExitsLoop)
{
    Simulation sim;
    int fired = 0;
    sim.scheduleAfter(10, [&] {
        ++fired;
        sim.requestStop();
    }, "stopper");
    sim.scheduleAfter(20, [&fired] { ++fired; }, "later");
    sim.run();
    EXPECT_EQ(fired, 1);
    sim.run(); // resumes
    EXPECT_EQ(fired, 2);
}

TEST(Simulation, EventsProcessedCounter)
{
    Simulation sim;
    for (int i = 0; i < 7; ++i)
        sim.scheduleAfter(i, [] {}, "noop");
    sim.run();
    EXPECT_EQ(sim.eventsProcessed(), 7u);
}

TEST(Simulation, NestedSchedulingFromHandlers)
{
    Simulation sim;
    std::vector<Ticks> times;
    std::function<void(int)> chain = [&](int depth) {
        times.push_back(sim.now());
        if (depth > 0) {
            sim.scheduleAfter(5, [&chain, depth] { chain(depth - 1); },
                              "chain");
        }
    };
    sim.scheduleAfter(0, [&chain] { chain(3); }, "start");
    sim.run();
    EXPECT_EQ(times, (std::vector<Ticks>{0, 5, 10, 15}));
}

TEST(Simulation, ForkRngDeterministicPerStream)
{
    Simulation a(77);
    Simulation b(77);
    Rng ra = a.forkRng(3);
    Rng rb = b.forkRng(3);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(ra.next(), rb.next());
}

/** Property: random schedules always dispatch in nondecreasing time. */
class EventOrderProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(EventOrderProperty, MonotoneDispatch)
{
    Simulation sim(GetParam());
    Rng rng(GetParam());
    std::vector<Ticks> fired;
    for (int i = 0; i < 2000; ++i) {
        const Ticks when = rng.below(100000);
        sim.scheduleAt(when, [&fired, &sim] { fired.push_back(sim.now()); },
                       "prop");
    }
    sim.run();
    ASSERT_EQ(fired.size(), 2000u);
    EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventOrderProperty,
                         ::testing::Values(1, 2, 3, 42, 99, 12345));

/** Self-deleting event that reports its destruction. */
class TrackedLambdaEvent : public sim::LambdaEvent
{
  public:
    TrackedLambdaEvent(int &deleted, std::function<void()> fn)
        : LambdaEvent(std::move(fn), "tracked"), deleted_(deleted)
    {}

    ~TrackedLambdaEvent() override { ++deleted_; }

  private:
    int &deleted_;
};

TEST(EventQueue, DescheduleDeletesSelfDeletingEvent)
{
    // Regression: descheduling a pending self-deleting event is its
    // last reachable moment — the queue must delete it there instead
    // of leaking it.
    Simulation sim;
    int deleted = 0;
    int fired = 0;
    auto *ev = new TrackedLambdaEvent(deleted, [&fired] { ++fired; });
    sim.schedule(ev, 10);
    sim.queue().deschedule(ev);
    EXPECT_EQ(deleted, 1);
    sim.scheduleAfter(20, [] {}, "later");
    sim.run();
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(deleted, 1);
}

TEST(EventQueue, DescheduleOfUnscheduledSelfDeleterIsNoOp)
{
    // An idempotent second deschedule must not double-delete.
    Simulation sim;
    int deleted = 0;
    auto *ev = new TrackedLambdaEvent(deleted, [] {});
    sim.schedule(ev, 10);
    sim.queue().deschedule(ev);
    EXPECT_EQ(deleted, 1);
    // ev is gone; a *different* unscheduled member event must survive
    // repeated deschedules untouched.
    std::vector<int> log;
    LogEvent member(log, 1);
    sim.queue().deschedule(&member);
    sim.queue().deschedule(&member);
    EXPECT_EQ(deleted, 1);
}

TEST(EventQueue, RescheduleNeverDeletes)
{
    // reschedule() moves a pending self-deleting event without the
    // deschedule-time deletion: it is live again on exit.
    Simulation sim;
    int deleted = 0;
    int fired = 0;
    auto *ev = new TrackedLambdaEvent(deleted, [&fired] { ++fired; });
    sim.schedule(ev, 100);
    sim.queue().reschedule(ev, 5);
    EXPECT_EQ(deleted, 0);
    EXPECT_TRUE(ev->scheduled());
    sim.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(deleted, 1); // deleted after firing, not before
}

TEST(EventQueue, ManyCancellationsInterleaved)
{
    // Stress the sorted cancellation vector: cancel a pseudo-random
    // half of a large schedule and check exactly the survivors fire.
    Simulation sim;
    std::vector<int> log;
    std::vector<std::unique_ptr<LogEvent>> events;
    std::vector<int> expect;
    Rng rng(99);
    for (int i = 0; i < 500; ++i) {
        events.push_back(std::make_unique<LogEvent>(log, i));
        sim.schedule(events.back().get(), 1 + rng.below(50));
    }
    for (int i = 0; i < 500; ++i) {
        if (rng.below(2) == 0)
            sim.queue().deschedule(events[i].get());
        else
            expect.push_back(i);
    }
    sim.run();
    EXPECT_EQ(log.size(), expect.size());
    std::sort(log.begin(), log.end());
    EXPECT_EQ(log, expect);
    EXPECT_TRUE(sim.queue().empty());
}

TEST(CallbackEvent, ReusableAcrossFirings)
{
    Simulation sim;
    int fired = 0;
    sim::CallbackEvent ev([&fired] { ++fired; }, "reuse");
    for (int i = 1; i <= 5; ++i) {
        sim.schedule(&ev, sim.now() + 1);
        sim.run();
    }
    EXPECT_EQ(fired, 5);
}

TEST(RecurringEvent, FiresPeriodicallyUntilStopped)
{
    Simulation sim;
    std::vector<Ticks> fire_times;
    sim::RecurringEvent tick(sim.queue(), 10,
                             [&] { fire_times.push_back(sim.now()); },
                             "tick");
    tick.start(10);
    sim.scheduleAfter(35, [&tick] { tick.stop(); }, "stopper");
    sim.run();
    EXPECT_EQ(fire_times, (std::vector<Ticks>{10, 20, 30}));
    EXPECT_TRUE(sim.queue().empty());
}

TEST(RecurringEvent, DestructorDeschedules)
{
    Simulation sim;
    int fired = 0;
    {
        sim::RecurringEvent tick(sim.queue(), 10, [&fired] { ++fired; },
                                 "tick");
        tick.start(10);
    } // destroyed while scheduled
    sim.scheduleAfter(100, [] {}, "later");
    sim.run();
    EXPECT_EQ(fired, 0);
}

TEST(RecurringEvent, CallbackMayStopItself)
{
    Simulation sim;
    int fired = 0;
    sim::RecurringEvent *self = nullptr;
    sim::RecurringEvent tick(sim.queue(), 10,
                             [&] {
                                 if (++fired == 3)
                                     self->stop();
                             },
                             "tick");
    self = &tick;
    tick.start(10);
    sim.run();
    EXPECT_EQ(fired, 3);
    EXPECT_TRUE(sim.queue().empty());
}

TEST(EventQueue, TombstoneSafetyAfterOwnerGone)
{
    // An owner that deschedules its event may be destroyed before the
    // queue; the stale heap entry must never be dereferenced.
    Simulation sim;
    std::vector<int> log;
    {
        auto ev = std::make_unique<LogEvent>(log, 1);
        sim.schedule(ev.get(), 50);
        sim.queue().deschedule(ev.get());
        // ev destroyed here while its tombstone sits in the heap.
    }
    sim.scheduleAfter(100, [] {}, "later");
    sim.run();
    EXPECT_TRUE(log.empty());
}

TEST(EventQueue, CancelHeadOfNonCurrentBucket)
{
    // Regression for the calendar layout: cancel the head event of a
    // bucket the cursor has not reached yet (the queue starts with
    // 1-tick buckets, so distinct ticks land in distinct buckets of
    // the initial window). The tombstone must be skimmed when the
    // cursor arrives, without disturbing the bucket's other entries.
    EventQueue q;
    std::vector<int> log;
    LogEvent a(log, 1), head(log, 2), follower(log, 3), c(log, 4);
    LogEvent far(log, 5);
    q.schedule(&a, 100);        // snaps the window to t=100
    q.schedule(&head, 105);     // head of the (future) t=105 bucket
    q.schedule(&follower, 105); // second entry of the same bucket
    q.schedule(&c, 107);
    q.schedule(&far, 100000);   // beyond the window: overflow store
    Event *first = q.pop();
    ASSERT_EQ(first, &a);
    q.deschedule(&head);        // cancel a non-current bucket's head
    while (Event *ev = q.pop())
        ev->process();
    EXPECT_EQ(log, (std::vector<int>{3, 4, 5}));
    EXPECT_FALSE(head.scheduled());
}

TEST(EventQueue, CancelHeadOfOverflowedBucket)
{
    // Same regression, but the cancelled head lives beyond the current
    // window (overflow store) when cancelled, and the queue must drop
    // it during redistribution rather than dispatch.
    Simulation sim;
    std::vector<int> log;
    LogEvent near1(log, 1);
    LogEvent far1(log, 2);
    LogEvent far2(log, 3);
    sim.schedule(&near1, 5);
    sim.schedule(&far1, 1'000'000);     // far beyond the initial window
    sim.schedule(&far2, 1'000'001);
    sim.queue().deschedule(&far1);      // cancel the overflow head
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{1, 3}));
    EXPECT_FALSE(far1.scheduled());
}

TEST(EventQueue, RebucketRetunesWindowToPendingSpan)
{
    // Introspection: a deep backlog must grow the calendar (more lanes,
    // wider buckets) instead of crawling one initial-width day at a
    // time; rebucketCount records the re-tunes.
    EventQueue q;
    std::vector<int> log;
    std::vector<std::unique_ptr<LogEvent>> events;
    Rng rng(19);
    // One near event anchors the window; everything else lands far
    // beyond it in the overflow store.
    for (int i = 0; i < 4096; ++i) {
        events.push_back(std::make_unique<LogEvent>(log, i));
        const Ticks when =
            i == 0 ? 1 : 32 + rng.below(Ticks{1} << 30);
        q.schedule(events.back().get(), when);
    }
    // The first pops drain the anchor and force the deep overflow
    // through a rebucket: ~1 entry per lane, lane width matched to the
    // head-of-backlog event spacing.
    for (int i = 0; i < 64; ++i)
        q.pop()->process();
    EXPECT_GE(q.rebucketCount(), 1u);
    EXPECT_GE(q.laneCount(), 1024u);
    EXPECT_GT(q.bucketWidth(), 1u);
    while (Event *ev = q.pop())
        ev->process();
    EXPECT_EQ(log.size(), 4096u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ScheduleBehindCursorStillDispatchesFirst)
{
    // The min-heap accepted events scheduled before the earliest
    // pending time; the calendar clamps them into the current bucket,
    // where they must still sort ahead of later-timed entries.
    EventQueue q;
    std::vector<int> log;
    LogEvent a(log, 1), past(log, 2);
    q.schedule(&a, 100);  // snaps the window to t=100
    q.schedule(&past, 10); // behind the cursor: clamped, sorts first
    EXPECT_EQ(q.nextTime(), 10u);
    EXPECT_EQ(q.pop(), &past);
    EXPECT_EQ(q.pop(), &a);
    EXPECT_EQ(q.pop(), nullptr);
}

} // namespace
