/**
 * @file
 * ConcurrencyGovernor integration tests: admission bookkeeping, policy
 * behaviour, reproducibility, and the headline property — a governed
 * run at full thread count recovering the throughput an ungoverned run
 * only reaches at its best thread count.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "base/units.hh"
#include "control/governor.hh"
#include "core/analyze.hh"
#include "core/experiment.hh"
#include "core/report.hh"

namespace {

using namespace jscale;

core::ExperimentConfig
governedCfg(control::GovernorMode mode, double scale, Ticks interval)
{
    core::ExperimentConfig cfg;
    cfg.workload_scale = scale;
    cfg.governor.mode = mode;
    cfg.governor.interval = interval;
    return cfg;
}

TEST(GovernorStateMachine, BookkeepingBalancesAtRunEnd)
{
    core::ExperimentRunner runner(governedCfg(
        control::GovernorMode::HillClimb, 0.1, 1 * units::MS));
    const jvm::RunResult r = runner.runApp("h2", 16);

    EXPECT_TRUE(r.governor.enabled);
    EXPECT_EQ(r.governor.policy, "hill");
    EXPECT_GT(r.governor.decisions, 0u);
    // Every admission park is matched by an unpark before the run ends —
    // no mutator is left behind.
    EXPECT_EQ(r.governor.parks, r.governor.unparks);
    // The scheduler's view agrees with the governor's.
    EXPECT_EQ(r.sched.admission_parks, r.governor.parks);
    EXPECT_EQ(r.sched.admission_unparks, r.governor.unparks);
    // The target trajectory stays within [1, n_threads] and brackets
    // the final value.
    EXPECT_GE(r.governor.min_target, 1u);
    EXPECT_LE(r.governor.max_target, 16u);
    EXPECT_GE(r.governor.final_target, r.governor.min_target);
    EXPECT_LE(r.governor.final_target, r.governor.max_target);
}

TEST(GovernorStateMachine, SingleThreadIsNeverParked)
{
    // With one mutator the floor forbids any parking at all: the last
    // runnable thread must always stay admitted.
    core::ExperimentRunner runner(governedCfg(
        control::GovernorMode::HillClimb, 0.1, 1 * units::MS));
    const jvm::RunResult r = runner.runApp("sunflow", 1);
    EXPECT_TRUE(r.governor.enabled);
    EXPECT_EQ(r.governor.parks, 0u);
    EXPECT_EQ(r.governor.min_target, 1u);
    EXPECT_GT(r.total_tasks, 0u);
}

TEST(GovernorStateMachine, PipelineStillCompletesUnderRestriction)
{
    // eclipse is a fixed-width pipeline: parking a producer stage can
    // starve consumers. The starvation escape must keep the run live
    // and the task count identical to the ungoverned run.
    core::ExperimentRunner plain(governedCfg(
        control::GovernorMode::Off, 0.1, 1 * units::MS));
    const jvm::RunResult ungoverned = plain.runApp("eclipse", 8);

    core::ExperimentRunner governed(governedCfg(
        control::GovernorMode::HillClimb, 0.1, 1 * units::MS));
    const jvm::RunResult r = governed.runApp("eclipse", 8);

    EXPECT_EQ(r.total_tasks, ungoverned.total_tasks);
    EXPECT_EQ(r.governor.parks, r.governor.unparks);
}

TEST(GovernorStateMachine, DecisionsAreSeedReproducible)
{
    auto run = [](control::GovernorMode mode) {
        core::ExperimentRunner runner(
            governedCfg(mode, 0.1, 1 * units::MS));
        return runner.runApp("jython", 16);
    };
    for (const auto mode : {control::GovernorMode::HillClimb,
                            control::GovernorMode::UslGuided}) {
        const jvm::RunResult a = run(mode);
        const jvm::RunResult b = run(mode);
        EXPECT_EQ(a.wall_time, b.wall_time);
        EXPECT_EQ(a.sim_events, b.sim_events);
        EXPECT_EQ(a.governor.decisions, b.governor.decisions);
        EXPECT_EQ(a.governor.parks, b.governor.parks);
        EXPECT_EQ(a.governor.final_target, b.governor.final_target);
    }
}

TEST(GovernorPolicy, UslCalibrationFitsAndClamps)
{
    core::ExperimentRunner runner(governedCfg(
        control::GovernorMode::UslGuided, 0.3, 5 * units::MS));
    const jvm::RunResult r = runner.runApp("h2", 48);

    EXPECT_EQ(r.governor.policy, "usl");
    // The calibration ladder completed and produced a usable fit.
    EXPECT_GT(r.governor.usl_nstar, 0.0);
    EXPECT_GE(r.governor.usl_sigma, 0.0);
    // The post-calibration clamp restricted concurrency below the full
    // complement (h2's coarse database lock collapses well before 48).
    EXPECT_LT(r.governor.final_target, 48u);
    EXPECT_GE(r.governor.final_target, 1u);
}

// ---------------------------------------------------------------------
// The headline acceptance property: a governed run at the machine's
// full thread count must recover (at least) the throughput the
// ungoverned application only reaches at its best thread count.
// ---------------------------------------------------------------------

TEST(GovernedThroughput, Jython48TRecoversUngovernedPeak)
{
    // jython's ungoverned sweep peaks at a single thread (its
    // interpreter lock makes every added thread a loss).
    core::ExperimentConfig plain_cfg;
    plain_cfg.workload_scale = 0.3;
    core::ExperimentRunner plain(plain_cfg);
    const auto sweep = plain.sweep("jython", {1, 4, 48});
    Ticks best_ungoverned = sweep.front().wall_time;
    for (const auto &r : sweep)
        best_ungoverned = std::min(best_ungoverned, r.wall_time);
    // Sanity: the peak really is the 1-thread point, i.e. the workload
    // is retrograde from the start.
    EXPECT_EQ(core::ScalabilityAnalyzer::observedKnee(sweep), 1u);

    core::ExperimentRunner governed(governedCfg(
        control::GovernorMode::HillClimb, 0.3, 5 * units::MS));
    const jvm::RunResult r = governed.runApp("jython", 48);

    // Same work volume, all 48 threads requested — and the governed run
    // is at least as fast as the ungoverned best-case configuration.
    EXPECT_LE(r.wall_time, best_ungoverned);
    EXPECT_GT(r.governor.parks, 0u);
}

// ---------------------------------------------------------------------
// USL-table acceptance: for the scalable applications the fitted
// recommendation must land within +/-25% of the sweep's observed knee,
// and the raw n* must not under-predict it.
// ---------------------------------------------------------------------

TEST(UslTable, RecommendationTracksObservedKneeForScalableApps)
{
    core::ExperimentConfig cfg;
    cfg.workload_scale = 0.3;
    cfg.jobs = 0; // fan the 18 runs across host cores
    core::ExperimentRunner runner(cfg);
    const std::vector<std::uint32_t> threads = {1, 2, 4, 8, 16, 48};
    const auto sweeps = runner.sweepApps(
        {"sunflow", "lusearch", "xalan"}, threads);

    for (const auto &[app, sweep] : sweeps) {
        const control::UslFit fit =
            core::ScalabilityAnalyzer::uslFit(sweep);
        ASSERT_TRUE(fit.valid) << app;
        const double knee =
            static_cast<double>(core::ScalabilityAnalyzer::observedKnee(sweep));
        // Recommendation: n* clamped into the swept range (n* = 0 means
        // "no finite knee", i.e. use everything that was measured).
        const double max_n = static_cast<double>(threads.back());
        const double rec =
            fit.n_star <= 0.0
                ? max_n
                : std::clamp(std::round(fit.n_star), 1.0, max_n);
        EXPECT_GE(rec, 0.75 * knee) << app << " n*=" << fit.n_star;
        EXPECT_LE(rec, 1.25 * knee) << app << " n*=" << fit.n_star;
        // The raw fit must not under-predict the knee either: these
        // sweeps rise through their largest point, so a small n* would
        // mean the model invented a collapse that is not there.
        if (fit.n_star > 0.0)
            EXPECT_GE(fit.n_star, 0.75 * knee) << app;
    }
}

// The USL report must emit one row per app with the fitted columns.
TEST(UslTable, ReportEmitsPerAppRows)
{
    core::ExperimentConfig cfg;
    cfg.workload_scale = 0.05;
    cfg.jobs = 0;
    core::ExperimentRunner runner(cfg);
    core::SweepSet sweeps = runner.sweepApps({"sunflow", "h2"}, {1, 2, 4});

    std::ostringstream table;
    core::printUslTable(table, sweeps);
    EXPECT_NE(table.str().find("sigma"), std::string::npos);
    EXPECT_NE(table.str().find("sunflow"), std::string::npos);
    EXPECT_NE(table.str().find("h2"), std::string::npos);

    std::ostringstream csv;
    core::writeUslCsv(csv, sweeps);
    std::istringstream is(csv.str());
    std::string line;
    ASSERT_TRUE(std::getline(is, line));
    EXPECT_EQ(line,
              "app,sigma,kappa,n_star,recommended_threads,predicted_peak,"
              "observed_knee,observed_peak,rms_residual,knee_class");
    std::size_t rows = 0;
    while (std::getline(is, line))
        ++rows;
    EXPECT_EQ(rows, 2u);
}

} // namespace
