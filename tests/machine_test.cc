/**
 * @file
 * Tests for the NUMA machine model: topology, core enabling and the
 * memory cost model.
 */

#include <gtest/gtest.h>

#include "machine/machine.hh"

namespace {

using namespace jscale;
using machine::Machine;
using machine::MachineConfig;

TEST(Machine, PaperPresetTopology)
{
    Machine m(Machine::amd6168_4p48c());
    EXPECT_EQ(m.config().sockets, 4u);
    EXPECT_EQ(m.config().cores_per_socket, 12u);
    EXPECT_EQ(m.cores().size(), 48u);
    EXPECT_DOUBLE_EQ(m.config().freq_ghz, 1.9);
    EXPECT_EQ(m.totalMemory(), 64ULL * units::GiB);
}

TEST(Machine, SocketAssignmentIsCompact)
{
    Machine m(Machine::amd6168_4p48c());
    EXPECT_EQ(m.socketOf(0), 0u);
    EXPECT_EQ(m.socketOf(11), 0u);
    EXPECT_EQ(m.socketOf(12), 1u);
    EXPECT_EQ(m.socketOf(47), 3u);
}

TEST(Machine, EnableCoresFillsCompactly)
{
    Machine m(Machine::amd6168_4p48c());
    m.enableCores(14);
    EXPECT_EQ(m.enabledCores(), 14u);
    EXPECT_EQ(m.enabledSockets(), 2u);
    const auto ids = m.enabledCoreIds();
    ASSERT_EQ(ids.size(), 14u);
    for (std::size_t i = 0; i < ids.size(); ++i)
        EXPECT_EQ(ids[i], i);
    EXPECT_TRUE(m.core(13).enabled());
    EXPECT_FALSE(m.core(14).enabled());
}

TEST(Machine, ReEnableShrinks)
{
    Machine m(Machine::amd6168_4p48c());
    m.enableCores(48);
    EXPECT_EQ(m.enabledSockets(), 4u);
    m.enableCores(4);
    EXPECT_EQ(m.enabledCores(), 4u);
    EXPECT_EQ(m.enabledSockets(), 1u);
    EXPECT_FALSE(m.core(4).enabled());
}

TEST(Machine, EnableBoundsChecked)
{
    Machine m(Machine::testMachine_2p8c());
    EXPECT_DEATH(m.enableCores(0), "at least one");
    EXPECT_DEATH(m.enableCores(9), "cannot enable");
}

TEST(Machine, CoreIdBoundsChecked)
{
    Machine m(Machine::testMachine_2p8c());
    EXPECT_DEATH(m.core(8), "out of range");
}

TEST(Machine, CyclesToTicksUsesFrequency)
{
    Machine m(Machine::testMachine_2p8c()); // 2 GHz
    EXPECT_EQ(m.core(0).cyclesToTicks(2000), 1000u);
}

TEST(Machine, MemCopyCostLocalVsRemote)
{
    Machine m(Machine::amd6168_4p48c());
    const Bytes bytes = 1 * units::MiB;
    const Ticks local = m.memCopyCost(0, 0, bytes);
    const Ticks remote = m.memCopyCost(0, 1, bytes);
    EXPECT_GT(local, 0u);
    EXPECT_NEAR(static_cast<double>(remote) / static_cast<double>(local),
                m.config().numa_remote_factor, 0.01);
}

TEST(Machine, MemCopyCostScalesWithBytes)
{
    Machine m(Machine::amd6168_4p48c());
    EXPECT_NEAR(static_cast<double>(m.memCopyCost(0, 0, 2048)),
                2.0 * static_cast<double>(m.memCopyCost(0, 0, 1024)),
                2.0);
}

TEST(Machine, ScatterPlacementSpreadsSockets)
{
    Machine m(Machine::amd6168_4p48c());
    m.enableCores(4, Machine::EnablePolicy::Scatter);
    EXPECT_EQ(m.enabledCores(), 4u);
    EXPECT_EQ(m.enabledSockets(), 4u); // one core per socket
    const auto ids = m.enabledCoreIds();
    EXPECT_EQ(ids, (std::vector<machine::CoreId>{0, 12, 24, 36}));

    m.enableCores(6, Machine::EnablePolicy::Scatter);
    EXPECT_EQ(m.enabledSockets(), 4u);
    EXPECT_EQ(m.enabledCoreIds(),
              (std::vector<machine::CoreId>{0, 1, 12, 13, 24, 36}));
}

TEST(Machine, ScatterEqualsCompactWhenFull)
{
    Machine a(Machine::testMachine_2p8c());
    Machine b(Machine::testMachine_2p8c());
    a.enableCores(8, Machine::EnablePolicy::Compact);
    b.enableCores(8, Machine::EnablePolicy::Scatter);
    EXPECT_EQ(a.enabledCoreIds(), b.enabledCoreIds());
}

/** Enabled-socket count follows compact fill. */
class EnabledSocketsTest
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>>
{
};

TEST_P(EnabledSocketsTest, MatchesCompactFill)
{
    const auto [cores, sockets] = GetParam();
    Machine m(Machine::amd6168_4p48c());
    m.enableCores(cores);
    EXPECT_EQ(m.enabledSockets(), sockets);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EnabledSocketsTest,
    ::testing::Values(std::make_pair(1u, 1u), std::make_pair(12u, 1u),
                      std::make_pair(13u, 2u), std::make_pair(24u, 2u),
                      std::make_pair(25u, 3u), std::make_pair(48u, 4u)));

} // namespace
