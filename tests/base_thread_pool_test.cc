/**
 * @file
 * Tests for the host-side worker pool and the parallel run executor:
 * completion semantics, result ordering, exception propagation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "base/thread_pool.hh"
#include "core/parallel.hh"

namespace {

using namespace jscale;

TEST(ThreadPool, RunsEveryTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroWorkersClampedToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, WaitBlocksUntilSlowTasksFinish)
{
    ThreadPool pool(2);
    std::atomic<int> done{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&done] {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            ++done;
        });
    }
    pool.wait();
    EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPool, ReusableAfterWait)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    pool.submit([&count] { ++count; });
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, DestructorDrainsBacklog)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 32; ++i)
            pool.submit([&count] { ++count; });
        // No wait(): the destructor must drain before joining.
    }
    EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, HardwareConcurrencyAtLeastOne)
{
    EXPECT_GE(ThreadPool::hardwareConcurrency(), 1u);
}

jvm::RunResult
resultWithWall(Ticks wall)
{
    jvm::RunResult r;
    r.wall_time = wall;
    return r;
}

TEST(ParallelExecutor, ResultsInSubmissionOrder)
{
    // Tasks finish out of order (later tasks are faster); results must
    // still land at their submission index.
    std::vector<std::function<jvm::RunResult()>> tasks;
    for (int i = 0; i < 16; ++i) {
        tasks.push_back([i] {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(16 - i));
            return resultWithWall(static_cast<Ticks>(i));
        });
    }
    const auto results = core::ParallelExecutor(8).run(std::move(tasks));
    ASSERT_EQ(results.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(results[i].wall_time, static_cast<Ticks>(i));
}

TEST(ParallelExecutor, EmptyBatch)
{
    const auto results = core::ParallelExecutor(4).run({});
    EXPECT_TRUE(results.empty());
}

TEST(ParallelExecutor, FirstExceptionInTaskOrderWins)
{
    std::vector<std::function<jvm::RunResult()>> tasks;
    tasks.push_back([]() -> jvm::RunResult {
        // Slow failure at index 0: must still be the one reported.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        throw std::runtime_error("first");
    });
    tasks.push_back([]() -> jvm::RunResult {
        throw std::runtime_error("second");
    });
    tasks.push_back([] { return resultWithWall(1); });
    try {
        core::ParallelExecutor(4).run(std::move(tasks));
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "first");
    }
}

TEST(ParallelExecutor, SingleWorkerStillCompletes)
{
    std::vector<std::function<jvm::RunResult()>> tasks;
    for (int i = 0; i < 4; ++i)
        tasks.push_back([i] { return resultWithWall(i); });
    const auto results = core::ParallelExecutor(1).run(std::move(tasks));
    ASSERT_EQ(results.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(results[i].wall_time, static_cast<Ticks>(i));
}

} // namespace
