/**
 * @file
 * E18 resilience-study tests: the intensity ladder expands each point
 * into a reproducible fault schedule, every point runs a governed and
 * an ungoverned arm of the same configuration, and the table/CSV
 * renderers report failed and skipped arms instead of dropping them.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "base/units.hh"
#include "core/resilience.hh"
#include "fault/fault.hh"

namespace {

using namespace jscale;

core::ResilienceConfig
smallStudy()
{
    core::ResilienceConfig cfg;
    cfg.app = "sunflow";
    cfg.threads = 4;
    cfg.intensities = {0.0, 0.6};
    cfg.horizon = 20 * units::MS;
    cfg.base.workload_scale = 0.05;
    cfg.base.heap_override = 32 * units::MiB; // skip calibration runs
    cfg.base.error_path.clear();
    return cfg;
}

TEST(Resilience, IntensityLadderExpandsIntoReproducibleSchedules)
{
    // Zero intensity expands to no faults at all.
    const auto none =
        fault::FaultPlan::fromIntensity(0.0, 42, 20 * units::MS);
    EXPECT_TRUE(none.empty());

    // The ladder is monotone: harder dials schedule at least as many
    // faults, and every expansion is a pure function of its arguments.
    std::size_t prev = 0;
    for (const double intensity : {0.25, 0.5, 0.75, 1.0}) {
        const auto plan =
            fault::FaultPlan::fromIntensity(intensity, 42, 20 * units::MS);
        EXPECT_FALSE(plan.empty()) << "intensity " << intensity;
        EXPECT_GE(plan.faults.size(), prev) << "intensity " << intensity;
        prev = plan.faults.size();

        const auto again =
            fault::FaultPlan::fromIntensity(intensity, 42, 20 * units::MS);
        EXPECT_EQ(plan.describe(), again.describe());
    }
}

TEST(Resilience, StudyRunsGovernedAndUngovernedArmsPerPoint)
{
    const auto points = core::runResilienceStudy(smallStudy());
    ASSERT_EQ(points.size(), 2u);

    EXPECT_DOUBLE_EQ(points[0].intensity, 0.0);
    EXPECT_DOUBLE_EQ(points[1].intensity, 0.6);

    for (const auto &p : points) {
        // Both arms completed and ran the same configuration.
        ASSERT_FALSE(p.ungoverned.failed()) << p.ungoverned.run_error;
        ASSERT_FALSE(p.governed.failed()) << p.governed.run_error;
        EXPECT_EQ(p.ungoverned.app_name, "sunflow");
        EXPECT_EQ(p.governed.app_name, "sunflow");
        EXPECT_EQ(p.ungoverned.threads, 4u);
        EXPECT_EQ(p.governed.threads, 4u);

        // The arms differ exactly in admission control.
        EXPECT_FALSE(p.ungoverned.governor.enabled);
        EXPECT_TRUE(p.governed.governor.enabled);
        EXPECT_GT(p.governed.governor.final_target, 0u);
    }

    // The faulted point carries its expanded schedule and actually
    // injected it; the clean point did not.
    EXPECT_EQ(points[0].ungoverned.faults.injections, 0u);
    EXPECT_FALSE(points[1].plan.empty());
    EXPECT_GT(points[1].ungoverned.faults.injections, 0u);
    EXPECT_GT(points[1].governed.faults.injections, 0u);
}

/** A study row whose arms never ran: one failed, one skipped. */
std::vector<core::ResiliencePoint>
syntheticPoints()
{
    core::ResiliencePoint ok;
    ok.intensity = 0.0;
    ok.ungoverned.app_name = ok.governed.app_name = "xalan";
    ok.ungoverned.threads = ok.governed.threads = 8;
    ok.ungoverned.wall_time = ok.governed.wall_time = 50 * units::MS;
    ok.ungoverned.total_tasks = ok.governed.total_tasks = 100;
    ok.governed.governor.enabled = true;
    ok.governed.governor.final_target = 6;

    core::ResiliencePoint broken;
    broken.intensity = 0.75;
    broken.plan = "kill@10ms";
    broken.ungoverned.app_name = "xalan";
    broken.ungoverned.run_error = "watchdog: no forward progress";
    broken.governed.app_name = "xalan";
    broken.governed.skipped = true;
    return {ok, broken};
}

TEST(Resilience, TableRendersFailedAndSkippedArms)
{
    std::ostringstream os;
    core::printResilienceTable(os, syntheticPoints());
    const std::string table = os.str();

    // The healthy point reports its governor target.
    EXPECT_NE(table.find("ungov"), std::string::npos) << table;
    EXPECT_NE(table.find("gov"), std::string::npos) << table;

    // The failed arm renders as a status row, not a crash or a silent
    // omission, and the diagnosis is printed after the table.
    EXPECT_NE(table.find("failed"), std::string::npos) << table;
    EXPECT_NE(table.find("watchdog: no forward progress"),
              std::string::npos)
        << table;

    // The skipped (checkpoint-resumed) arm is labelled, too.
    EXPECT_NE(table.find("skipped"), std::string::npos) << table;
}

TEST(Resilience, CsvReportsOneRowPerArmWithStatusColumn)
{
    std::ostringstream os;
    core::writeResilienceCsv(os, syntheticPoints());
    const std::string csv = os.str();

    std::istringstream lines(csv);
    std::string line;
    std::vector<std::string> rows;
    while (std::getline(lines, line))
        rows.push_back(line);

    // Header + 2 points x 2 arms.
    ASSERT_EQ(rows.size(), 5u) << csv;
    EXPECT_NE(rows[0].find("intensity,arm,status"), std::string::npos);
    EXPECT_NE(rows[1].find(",ungov,ok,"), std::string::npos) << rows[1];
    EXPECT_NE(rows[2].find(",gov,ok,"), std::string::npos) << rows[2];
    EXPECT_NE(rows[3].find(",ungov,failed,"), std::string::npos)
        << rows[3];
    EXPECT_NE(rows[4].find(",gov,skipped,"), std::string::npos)
        << rows[4];

    // Every row has the same number of columns as the header.
    const auto cols = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    for (const auto &row : rows)
        EXPECT_EQ(cols(row), cols(rows[0])) << row;
}

} // namespace
