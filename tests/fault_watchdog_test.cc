/**
 * @file
 * Watchdog and error-isolation tests: the sim-time watchdog converts a
 * livelocked run into a diagnosed WatchdogError, the sim-time guard
 * throws AbortError instead of killing the process, and the experiment
 * harness isolates both as per-run failures (error artifact + failed()
 * marker) while the rest of the batch completes.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "base/error.hh"
#include "base/units.hh"
#include "core/experiment.hh"
#include "core/parallel.hh"
#include "jvm/runtime/app.hh"

namespace {

using namespace jscale;

/**
 * A deliberately livelocked application: every thread does a little
 * setup work, then blocks forever on a channel nobody posts to.
 */
class LivelockApp : public jvm::ApplicationModel
{
  public:
    std::string appName() const override { return "livelock"; }

    void
    setup(jvm::AppContext &ctx) override
    {
        starved_ = ctx.createChannel("livelock.starved", 0);
    }

    std::unique_ptr<jvm::ActionSource>
    threadSource(std::uint32_t, jvm::AppContext &) override
    {
        class Source : public jvm::ActionSource
        {
          public:
            explicit Source(jvm::ChannelId ch) : ch_(ch) {}

            jvm::Action
            next() override
            {
                switch (step_++) {
                  case 0:
                    return jvm::Action::compute(10 * units::US);
                  case 1:
                    return jvm::Action::channelAcquire(ch_);
                  default:
                    return jvm::Action::end();
                }
            }

          private:
            jvm::ChannelId ch_;
            int step_ = 0;
        };
        return std::make_unique<Source>(starved_);
    }

  private:
    jvm::ChannelId starved_ = 0;
};

core::ExperimentConfig
watchdogCfg()
{
    core::ExperimentConfig cfg;
    cfg.workload_scale = 0.05;
    cfg.heap_override = 32 * units::MiB; // skip calibration runs
    cfg.watchdog = true;
    cfg.watchdog_config.interval = 5 * units::MS;
    cfg.watchdog_config.stalled_limit = 3;
    return cfg;
}

TEST(Watchdog, LivelockedRunThrowsDiagnosedWatchdogError)
{
    core::ExperimentRunner runner(watchdogCfg());
    try {
        runner.runCustom([] { return std::make_unique<LivelockApp>(); },
                         "livelock", 4);
        FAIL() << "livelocked run should not complete";
    } catch (const WatchdogError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("no forward progress"), std::string::npos)
            << what;
        // The diagnostic names the stuck threads and their states.
        EXPECT_NE(what.find("thread states"), std::string::npos) << what;
    }
}

TEST(Watchdog, HealthyRunIsUntouchedByTheWatchdog)
{
    core::ExperimentConfig with = watchdogCfg();
    core::ExperimentConfig without = watchdogCfg();
    without.watchdog = false;
    core::ExperimentRunner a(with);
    core::ExperimentRunner b(without);
    const jvm::RunResult ra = a.runApp("xalan", 4);
    const jvm::RunResult rb = b.runApp("xalan", 4);
    // The watchdog is an observer: arming it must not change simulated
    // behaviour (its own check events do add to the sim-event count).
    EXPECT_EQ(ra.wall_time, rb.wall_time);
    EXPECT_EQ(ra.total_tasks, rb.total_tasks);
    EXPECT_EQ(ra.gc_time, rb.gc_time);
}

TEST(Watchdog, RunIsolationCapturesWatchdogErrorPerTask)
{
    // The batch executor turns a livelocked run into a per-task error
    // while healthy tasks in the same batch complete.
    core::ExperimentRunner runner(watchdogCfg());
    std::vector<std::function<jvm::RunResult()>> tasks;
    tasks.push_back([&runner]() -> jvm::RunResult {
        return runner.runCustom(
            [] { return std::make_unique<LivelockApp>(); }, "livelock",
            4);
    });
    tasks.push_back(
        [&runner] { return runner.runApp("sunflow", 4); });

    const auto outcomes =
        core::ParallelExecutor(1).runIsolated(std::move(tasks));
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_NE(outcomes[0].error.find("no forward progress"),
              std::string::npos)
        << outcomes[0].error;
    EXPECT_TRUE(outcomes[1].ok);
    EXPECT_GT(outcomes[1].result.total_tasks, 0u);
}

TEST(Watchdog, SimTimeGuardAbortsInsteadOfKillingTheProcess)
{
    core::ExperimentConfig cfg;
    cfg.workload_scale = 0.05;
    cfg.heap_override = 32 * units::MiB;
    cfg.vm.max_run_time = 1 * units::MS; // far below any real run
    core::ExperimentRunner runner(cfg);
    EXPECT_THROW(runner.runApp("xalan", 4), AbortError);
}

TEST(Watchdog, SweepIsolatesAbortedRunsAsFailedMarkers)
{
    const std::string error_dir = "watchdogtest-errors";
    std::filesystem::remove_all(error_dir);

    core::ExperimentConfig cfg;
    cfg.workload_scale = 0.05;
    cfg.heap_override = 32 * units::MiB;
    cfg.vm.max_run_time = 1 * units::MS;
    cfg.error_path = error_dir + "/{app}-t{threads}.error.txt";
    core::ExperimentRunner runner(cfg);

    // No throw: both points come back as failed() markers.
    const auto results = runner.sweep("xalan", {2, 4});
    ASSERT_EQ(results.size(), 2u);
    for (const auto &r : results) {
        EXPECT_TRUE(r.failed());
        EXPECT_NE(r.run_error.find("did not finish"), std::string::npos)
            << r.run_error;
        EXPECT_EQ(r.app_name, "xalan");
    }
    EXPECT_EQ(results[0].threads, 2u);
    EXPECT_EQ(results[1].threads, 4u);

    // Each failure left a per-run error artifact.
    EXPECT_TRUE(std::filesystem::exists(error_dir + "/xalan-t2.error.txt"));
    EXPECT_TRUE(std::filesystem::exists(error_dir + "/xalan-t4.error.txt"));
    std::ifstream in(error_dir + "/xalan-t2.error.txt");
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    EXPECT_NE(contents.find("did not finish"), std::string::npos)
        << contents;
    std::filesystem::remove_all(error_dir);
}

} // namespace
