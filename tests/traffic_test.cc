/**
 * @file
 * Tests for the open-system traffic subsystem: arrival-spec grammar,
 * arrival-stream determinism, per-request latency conservation, bounded
 * admission queues, multi-tenant hosting and the per-tenant sampler
 * gauge columns.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/report.hh"
#include "stats/stats.hh"
#include "telemetry/sampler.hh"
#include "traffic/arrival.hh"
#include "traffic/tenancy.hh"

namespace {

using namespace jscale;
using core::ExperimentConfig;
using core::ExperimentRunner;
using traffic::ArrivalProcess;
using traffic::ArrivalSpec;
using traffic::TenantSpec;

ExperimentConfig
fastConfig()
{
    ExperimentConfig cfg;
    cfg.workload_scale = 0.05;
    return cfg;
}

// ---------------------------------------------------------------------
// Spec grammar
// ---------------------------------------------------------------------

TEST(ArrivalSpec, ParsesEveryProcessFamily)
{
    ArrivalSpec s;
    std::string err;
    ASSERT_TRUE(ArrivalSpec::parse("poisson:rate=500:requests=100", s,
                                   err))
        << err;
    EXPECT_EQ(s.kind, traffic::ArrivalKind::Poisson);
    EXPECT_DOUBLE_EQ(s.rate, 500.0);
    EXPECT_EQ(s.requests, 100u);

    ASSERT_TRUE(ArrivalSpec::parse(
        "burst:rate=200:factor=8:on_ms=5:off_ms=15", s, err))
        << err;
    EXPECT_EQ(s.kind, traffic::ArrivalKind::Bursty);
    EXPECT_DOUBLE_EQ(s.burst_factor, 8.0);
    EXPECT_EQ(s.on_mean, 5 * units::MS);
    EXPECT_EQ(s.off_mean, 15 * units::MS);

    ASSERT_TRUE(ArrivalSpec::parse(
        "diurnal:rate=100:peak=4:period_ms=200", s, err))
        << err;
    EXPECT_EQ(s.kind, traffic::ArrivalKind::Diurnal);
    EXPECT_DOUBLE_EQ(s.peak_factor, 4.0);
    EXPECT_EQ(s.period, 200 * units::MS);
}

TEST(ArrivalSpec, DescribeRoundTrips)
{
    ArrivalSpec a;
    std::string err;
    ASSERT_TRUE(ArrivalSpec::parse(
        "poisson:rate=350:requests=42:queue=7:shed=oldest", a, err));
    ArrivalSpec b;
    ASSERT_TRUE(ArrivalSpec::parse(a.describe(), b, err))
        << a.describe() << ": " << err;
    EXPECT_EQ(a.describe(), b.describe());
}

TEST(ArrivalSpec, RejectsMalformedSpecs)
{
    ArrivalSpec s;
    std::string err;
    for (const char *bad :
         {"", "bogus:rate=1", "poisson", "poisson:rate=0",
          "poisson:rate=-5", "poisson:rate=1:rate=2",
          "poisson:rate=1:bananas=3", "poisson:rate=1:requests=0",
          "burst:rate=100:factor=0", "diurnal:rate=100:peak=0.5",
          "poisson:rate=1:shed=sometimes"}) {
        EXPECT_FALSE(ArrivalSpec::parse(bad, s, err)) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
}

TEST(TenantSpec, ParsesListAndRejectsGarbage)
{
    std::vector<TenantSpec> tenants;
    std::string err;
    ASSERT_TRUE(TenantSpec::parseList(
        "h2:threads=4:rate=100;jython:threads=2:process=burst:rate=50:"
        "factor=4",
        tenants, err))
        << err;
    ASSERT_EQ(tenants.size(), 2u);
    EXPECT_EQ(tenants[0].app, "h2");
    EXPECT_EQ(tenants[0].threads, 4u);
    EXPECT_EQ(tenants[1].arrival.kind, traffic::ArrivalKind::Bursty);

    for (const char *bad :
         {"", "h2", "h2:rate=5", "h2:threads=0:rate=5",
          "nosuchapp:threads=2:rate=5",
          "h2:threads=2:rate=5;;h2:threads=2:rate=5"}) {
        EXPECT_FALSE(TenantSpec::parseList(bad, tenants, err)) << bad;
    }
}

// ---------------------------------------------------------------------
// Arrival-stream determinism
// ---------------------------------------------------------------------

TEST(ArrivalProcess, SameSeedSameSchedule)
{
    ArrivalSpec spec;
    std::string err;
    ASSERT_TRUE(ArrivalSpec::parse(
        "burst:rate=1000:factor=6:on_ms=2:off_ms=8", spec, err));
    ArrivalProcess a(spec, Rng(99));
    ArrivalProcess b(spec, Rng(99));
    Ticks now_a = 0;
    Ticks now_b = 0;
    for (int i = 0; i < 5000; ++i) {
        const Ticks ga = a.nextGap(now_a);
        const Ticks gb = b.nextGap(now_b);
        ASSERT_EQ(ga, gb) << "arrival " << i;
        ASSERT_GE(ga, 1u);
        now_a += ga;
        now_b += gb;
    }
}

TEST(ArrivalProcess, SeedChangesSchedule)
{
    ArrivalSpec spec;
    std::string err;
    ASSERT_TRUE(ArrivalSpec::parse("poisson:rate=1000", spec, err));
    ArrivalProcess a(spec, Rng(1));
    ArrivalProcess b(spec, Rng(2));
    bool differs = false;
    Ticks now_a = 0;
    Ticks now_b = 0;
    for (int i = 0; i < 200 && !differs; ++i) {
        const Ticks ga = a.nextGap(now_a);
        const Ticks gb = b.nextGap(now_b);
        differs = ga != gb;
        now_a += ga;
        now_b += gb;
    }
    EXPECT_TRUE(differs);
}

// ---------------------------------------------------------------------
// Open-loop runs: conservation, determinism, --jobs byte-identity
// ---------------------------------------------------------------------

TEST(OpenLoop, RequestAccountingConserves)
{
    ExperimentConfig cfg = fastConfig();
    cfg.arrivals = "poisson:rate=400:requests=150";
    cfg.oracles = true; // the request-conservation oracle rides along
    ExperimentRunner runner(cfg);
    const jvm::RunResult r = runner.runApp("sunflow", 4);

    ASSERT_TRUE(r.traffic.enabled);
    EXPECT_EQ(r.traffic.arrivals, 150u);
    EXPECT_EQ(r.traffic.shed, 0u);
    EXPECT_EQ(r.traffic.admitted, 150u);
    EXPECT_EQ(r.traffic.dispatched, 150u);
    EXPECT_EQ(r.traffic.completed, 150u);
    EXPECT_EQ(r.traffic.sojourn.count(), 150u);
    EXPECT_EQ(r.traffic.queueing.count(), 150u);
    EXPECT_EQ(r.traffic.service.count(), 150u);

    // Integer-exact conservation: sojourn = queueing + service, and the
    // service time is fully attributed to wait-state buckets.
    EXPECT_EQ(r.traffic.sojourn.sum(),
              r.traffic.queueing.sum() + r.traffic.service.sum());
    EXPECT_EQ(r.traffic.service.sum(), r.traffic.serviceBucketTotal());
}

TEST(OpenLoop, DeterministicAcrossRuns)
{
    ExperimentConfig cfg = fastConfig();
    cfg.arrivals = "burst:rate=600:factor=4:requests=200";
    ExperimentRunner a(cfg);
    ExperimentRunner b(cfg);
    const jvm::RunResult ra = a.runApp("h2", 4);
    const jvm::RunResult rb = b.runApp("h2", 4);
    EXPECT_EQ(ra.wall_time, rb.wall_time);
    EXPECT_EQ(ra.traffic.sojourn.sum(), rb.traffic.sojourn.sum());
    EXPECT_EQ(ra.traffic.sojourn.quantile(0.99),
              rb.traffic.sojourn.quantile(0.99));
    EXPECT_EQ(ra.traffic.queueing.sum(), rb.traffic.queueing.sum());
    EXPECT_EQ(ra.sim_events, rb.sim_events);
}

TEST(OpenLoop, SweepByteIdenticalAcrossJobs)
{
    ExperimentConfig cfg = fastConfig();
    cfg.arrivals = "poisson:rate=500:requests=120";
    cfg.oracles = true;

    ExperimentConfig cfg1 = cfg;
    cfg1.jobs = 1;
    ExperimentConfig cfgN = cfg;
    cfgN.jobs = 4;
    ExperimentRunner seq(cfg1);
    ExperimentRunner par(cfgN);

    const std::vector<std::uint32_t> threads = {2, 4};
    const auto rs = seq.sweep("xalan", threads);
    const auto rp = par.sweep("xalan", threads);
    ASSERT_EQ(rs.size(), rp.size());

    std::ostringstream cs;
    std::ostringstream cp;
    core::writeTrafficCsv(cs, rs);
    core::writeTrafficCsv(cp, rp);
    EXPECT_EQ(cs.str(), cp.str());
    for (std::size_t i = 0; i < rs.size(); ++i) {
        const auto ss = core::runStatSnapshot(rs[i]);
        const auto sp = core::runStatSnapshot(rp[i]);
        std::ostringstream ds;
        std::ostringstream dp;
        ss.print(ds);
        sp.print(dp);
        EXPECT_EQ(ds.str(), dp.str()) << "threads " << rs[i].threads;
    }
}

// ---------------------------------------------------------------------
// Bounded admission queues
// ---------------------------------------------------------------------

TEST(OpenLoop, BoundedQueueShedsAndConserves)
{
    // Rate far beyond one slow worker's capacity with a 2-deep queue:
    // most arrivals must shed, and every request either completes or
    // sheds — never both, never neither.
    ExperimentConfig cfg = fastConfig();
    cfg.arrivals = "poisson:rate=20000:requests=300:queue=2:shed=drop";
    cfg.oracles = true;
    ExperimentRunner runner(cfg);
    const jvm::RunResult r = runner.runApp("jython", 1);

    ASSERT_TRUE(r.traffic.enabled);
    EXPECT_EQ(r.traffic.arrivals, 300u);
    EXPECT_GT(r.traffic.shed, 0u);
    // DropNewest rejects at the door: shed arrivals are never admitted.
    EXPECT_EQ(r.traffic.admitted + r.traffic.shed, r.traffic.arrivals);
    EXPECT_EQ(r.traffic.completed, r.traffic.admitted);
    EXPECT_EQ(r.traffic.dispatched, r.traffic.completed);
    EXPECT_LE(r.traffic.max_queue_depth, 2u);
}

TEST(OpenLoop, DropOldestEvictsAdmittedRequests)
{
    ExperimentConfig cfg = fastConfig();
    cfg.arrivals = "poisson:rate=20000:requests=300:queue=2:shed=oldest";
    cfg.oracles = true;
    ExperimentRunner runner(cfg);
    const jvm::RunResult r = runner.runApp("jython", 1);

    ASSERT_TRUE(r.traffic.enabled);
    EXPECT_GT(r.traffic.shed, 0u);
    // DropOldest admits every arrival and evicts from the queue, so
    // the conservation law runs through admitted, not arrivals.
    EXPECT_EQ(r.traffic.admitted, r.traffic.arrivals);
    EXPECT_EQ(r.traffic.completed + r.traffic.shed, r.traffic.admitted);
    EXPECT_EQ(r.traffic.dispatched, r.traffic.completed);
}

// ---------------------------------------------------------------------
// Histogram quantile edges at open-loop scale
// ---------------------------------------------------------------------

TEST(LatencyHistogramEdges, EmptyAndSingleValue)
{
    stats::LatencyHistogram h;
    EXPECT_EQ(h.quantile(0.0), 0u);
    EXPECT_EQ(h.quantile(0.99), 0u);
    h.add(12345);
    EXPECT_EQ(h.quantile(0.0), 12345u);
    EXPECT_EQ(h.quantile(0.5), 12345u);
    EXPECT_EQ(h.quantile(1.0), 12345u);
}

TEST(LatencyHistogramEdges, QuantilesAreRecordedLowerEdges)
{
    // At open-loop scale (10^5 samples spanning us..s magnitudes) each
    // quantile must land on the lower edge of an occupied bucket,
    // clamped to the exact extremes, and stay monotone in p.
    stats::LatencyHistogram h;
    Rng rng(7);
    std::uint64_t lo = ~0ULL;
    std::uint64_t hi = 0;
    for (int i = 0; i < 100000; ++i) {
        const auto v = static_cast<std::uint64_t>(
            1000.0 * rng.exponential(1.0) * (1 + i % 997));
        h.add(v);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    EXPECT_EQ(h.min(), lo);
    EXPECT_EQ(h.max(), hi);
    EXPECT_EQ(h.quantile(0.0), lo);
    // p=1 lands on the lower edge of the bucket holding the maximum
    // (clamped into [min, max]) — within one bucket's width of max.
    const std::uint64_t top = h.quantile(1.0);
    EXPECT_GE(top, stats::LatencyHistogram::bucketLowerEdge(
                       stats::LatencyHistogram::bucketIndex(hi)));
    EXPECT_LE(top, hi);
    std::uint64_t prev = 0;
    for (const double p : {0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
        const std::uint64_t q = h.quantile(p);
        EXPECT_GE(q, prev) << "p=" << p;
        EXPECT_GE(q, lo);
        EXPECT_LE(q, hi);
        if (q > lo && q < hi) {
            // Interior quantiles sit exactly on a bucket lower edge.
            EXPECT_EQ(
                q, stats::LatencyHistogram::bucketLowerEdge(
                       stats::LatencyHistogram::bucketIndex(q)))
                << "p=" << p;
        }
        prev = q;
    }
}

// ---------------------------------------------------------------------
// Multi-tenant hosting
// ---------------------------------------------------------------------

TEST(MultiTenant, CoreAccountingTotals)
{
    ExperimentConfig cfg = fastConfig();
    std::vector<TenantSpec> specs;
    std::string err;
    ASSERT_TRUE(TenantSpec::parseList(
        "sunflow:threads=4:rate=300:requests=80;"
        "h2:threads=4:rate=200:requests=60",
        specs, err))
        << err;
    ExperimentRunner runner(cfg);
    const auto results = runner.runTenants(specs);
    ASSERT_EQ(results.size(), 2u);

    Ticks host_wall = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const jvm::RunResult &r = results[i];
        ASSERT_FALSE(r.failed()) << r.run_error;
        EXPECT_EQ(r.threads, specs[i].threads);
        EXPECT_EQ(r.cores, 8u); // 4 + 4 tenant threads, one core each
        ASSERT_TRUE(r.traffic.enabled);
        EXPECT_EQ(r.traffic.tenant, i);
        EXPECT_EQ(r.traffic.completed + r.traffic.shed,
                  r.traffic.admitted);
        host_wall = std::max(host_wall, r.wall_time);

        // Each tenant summarizes only its own scheduling group: exactly
        // its mutators, and every thread's CPU fits inside the host run.
        std::uint64_t mutators = 0;
        for (const jvm::ThreadSummary &ts : r.thread_summaries) {
            mutators += ts.kind == os::ThreadKind::Mutator ? 1 : 0;
            EXPECT_LE(ts.cpu_time, host_wall);
        }
        EXPECT_EQ(mutators, specs[i].threads);
    }

    // The shared machine cannot hand out more CPU than cores x wall.
    std::uint64_t total_cpu = 0;
    for (const jvm::RunResult &r : results)
        for (const jvm::ThreadSummary &ts : r.thread_summaries)
            total_cpu += ts.cpu_time;
    EXPECT_LE(total_cpu, static_cast<std::uint64_t>(host_wall) * 8u);
}

TEST(MultiTenant, DeterministicAcrossHosts)
{
    ExperimentConfig cfg = fastConfig();
    std::vector<TenantSpec> specs;
    std::string err;
    ASSERT_TRUE(TenantSpec::parseList(
        "xalan:threads=2:rate=200:requests=60;"
        "jython:threads=2:rate=150:requests=40",
        specs, err));
    ExperimentRunner a(cfg);
    ExperimentRunner b(cfg);
    const auto ra = a.runTenants(specs);
    const auto rb = b.runTenants(specs);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
        EXPECT_EQ(ra[i].wall_time, rb[i].wall_time);
        EXPECT_EQ(ra[i].traffic.sojourn.sum(),
                  rb[i].traffic.sojourn.sum());
        EXPECT_EQ(ra[i].traffic.sojourn.quantile(0.99),
                  rb[i].traffic.sojourn.quantile(0.99));
    }
}

TEST(MultiTenant, OraclesCleanUnderSharedScheduler)
{
    ExperimentConfig cfg = fastConfig();
    cfg.oracles = true;
    std::vector<TenantSpec> specs;
    std::string err;
    ASSERT_TRUE(TenantSpec::parseList(
        "h2:threads=2:rate=200:requests=50;"
        "sunflow:threads=2:rate=300:requests=60",
        specs, err));
    ExperimentRunner runner(cfg);
    const auto results = runner.runTenants(specs);
    for (const jvm::RunResult &r : results)
        EXPECT_FALSE(r.failed()) << r.run_error;
}

// ---------------------------------------------------------------------
// Per-tenant sampler gauges (single-tenant schema stays fixed)
// ---------------------------------------------------------------------

/** First line of file @p path (empty when unreadable). */
std::string
headerLine(const std::string &path)
{
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    return line;
}

TEST(MultiTenant, SamplerSchemaFixedForSingleTenant)
{
    const std::string single = "traffic_metrics_single.csv";
    const std::string dual = "traffic_metrics_dual.csv";
    std::remove(single.c_str());
    std::remove(dual.c_str());

    ExperimentConfig cfg = fastConfig();
    cfg.metrics_interval = 1 * units::MS;
    std::vector<TenantSpec> specs;
    std::string err;

    // One tenant: the CSV schema must stay byte-identical to the fixed
    // header — no per-tenant gauge columns appear.
    cfg.metrics_path = single;
    ASSERT_TRUE(TenantSpec::parseList("sunflow:threads=2:rate=300:"
                                      "requests=60",
                                      specs, err));
    ExperimentRunner one(cfg);
    (void)one.runTenants(specs);
    EXPECT_EQ(headerLine(single),
              telemetry::MetricSampler::csvHeader());

    // Two tenants: queue-depth and in-flight columns per tenant append
    // after the fixed schema.
    cfg.metrics_path = dual;
    ASSERT_TRUE(TenantSpec::parseList(
        "sunflow:threads=2:rate=300:requests=60;"
        "h2:threads=2:rate=200:requests=40",
        specs, err));
    ExperimentRunner two(cfg);
    (void)two.runTenants(specs);
    const std::string header = headerLine(dual);
    const std::string fixed = telemetry::MetricSampler::csvHeader();
    ASSERT_EQ(header.compare(0, fixed.size(), fixed), 0) << header;
    EXPECT_NE(header.find("tenant0_sunflow_queued"), std::string::npos)
        << header;
    EXPECT_NE(header.find("tenant1_h2_inflight"), std::string::npos)
        << header;

    std::remove(single.c_str());
    std::remove(dual.c_str());
}

} // namespace
