/**
 * @file
 * Tests for the telemetry layer: JSON escaping and validation, the
 * streaming Chrome-trace writer, the probe-driven timeline recorder
 * (span accounting against RunResult) and the periodic metric sampler.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/json.hh"
#include "telemetry/recorder.hh"
#include "telemetry/sampler.hh"
#include "telemetry/timeline.hh"
#include "test_apps.hh"

namespace {

using namespace jscale;
using test::TinyApp;
using test::TinyAppParams;
using test::VmHarness;

TEST(JsonEscape, PassesPlainText)
{
    EXPECT_EQ(telemetry::jsonEscape("core 3"), "core 3");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls)
{
    EXPECT_EQ(telemetry::jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(telemetry::jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(telemetry::jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(telemetry::jsonEscape(std::string("a\x01z")), "a\\u0001z");
}

TEST(ValidateJson, AcceptsWellFormedDocuments)
{
    for (const char *ok :
         {"{}", "[]", "null", "true", "-12.5e3", "\"s\"",
          R"({"a":[1,2,{"b":null}],"c":"\u00e9\n"})"}) {
        std::string err;
        EXPECT_TRUE(telemetry::validateJson(ok, &err)) << ok << ": " << err;
    }
}

TEST(ValidateJson, RejectsMalformedDocuments)
{
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\":1,}", "{a:1}", "01", "nan", "\"\\x\"",
          "\"unterminated", "[1] garbage", "{\"a\" 1}"}) {
        EXPECT_FALSE(telemetry::validateJson(bad)) << bad;
    }
}

TEST(Timeline, EmitsParsableEventsWithExactTimestamps)
{
    std::ostringstream os;
    {
        telemetry::Timeline tl(os);
        tl.processName(1, "cores");
        tl.threadName(1, 0, "core \"0\"");
        tl.span(1, 0, "work", "burst", 1234, 6789,
                {telemetry::targ("thread", std::uint64_t{7})});
        tl.instant(1, 0, "preempt", "sched", 5000);
        tl.counter(3, "heap", 2000,
                   {telemetry::targ("eden", std::uint64_t{42})});
        EXPECT_EQ(tl.events(), 5u);
    }
    const std::string text = os.str();
    std::string err;
    ASSERT_TRUE(telemetry::validateJson(text, &err)) << err;
    // 1234 ns and a 5555 ns duration render as exact microsecond decimals.
    EXPECT_NE(text.find("\"ts\":1.234"), std::string::npos);
    EXPECT_NE(text.find("\"dur\":5.555"), std::string::npos);
    EXPECT_NE(text.find("core \\\"0\\\""), std::string::npos);
}

TEST(Timeline, FinishIsIdempotentAndTerminatesDocument)
{
    std::ostringstream os;
    telemetry::Timeline tl(os);
    tl.finish();
    tl.finish();
    EXPECT_TRUE(telemetry::validateJson(os.str()));
}

/** Parse the "<us>.<3-digit-ns>" field @p key of one event line to ns. */
std::uint64_t
fieldNs(const std::string &line, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    const auto pos = line.find(needle);
    if (pos == std::string::npos)
        return 0;
    std::size_t i = pos + needle.size();
    std::uint64_t us = 0;
    while (i < line.size() && line[i] >= '0' && line[i] <= '9')
        us = us * 10 + static_cast<std::uint64_t>(line[i++] - '0');
    std::uint64_t ns = 0;
    if (i < line.size() && line[i] == '.') {
        ++i;
        for (int d = 0; d < 3; ++d)
            ns = ns * 10 + static_cast<std::uint64_t>(line[i++] - '0');
    }
    return us * 1000 + ns;
}

/** One emitted trace event, as the test sees it. */
struct Ev
{
    std::string line;
    std::uint64_t ts = 0;
    std::uint64_t dur = 0;

    bool
    has(const std::string &what) const
    {
        return line.find(what) != std::string::npos;
    }
};

/** Split a timeline document into its event lines. */
std::vector<Ev>
eventLines(const std::string &text)
{
    std::vector<Ev> out;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (line.rfind("{\"name\"", 0) != 0)
            continue;
        Ev e;
        e.ts = fieldNs(line, "ts");
        e.dur = fieldNs(line, "dur");
        e.line = std::move(line);
        out.push_back(std::move(e));
    }
    return out;
}

/** A contended, GC-heavy tiny app on a small heap. */
TinyAppParams
busyParams()
{
    TinyAppParams p;
    p.name = "telemetry-app";
    p.tasks_per_thread = 120;
    p.compute_per_task = 20 * units::US;
    p.allocs_per_task = 8;
    p.alloc_size = 4096;
    p.alloc_ttl = 64 * units::KiB;
    p.use_shared_lock = 5 * units::US;
    return p;
}

jvm::VmConfig
smallHeapConfig()
{
    jvm::VmConfig cfg = VmHarness::defaultVmConfig();
    cfg.heap.capacity = 2 * units::MiB;
    return cfg;
}

/** Run one recorded VM and return (result, trace text). */
jvm::RunResult
recordedRun(std::string &text_out, Ticks *end_out = nullptr)
{
    VmHarness h(4, smallHeapConfig());
    std::ostringstream os;
    telemetry::Timeline tl(os);
    telemetry::TelemetryRecorder rec(tl);
    rec.attach(h.vm);
    TinyApp app(busyParams());
    const jvm::RunResult r = h.vm.run(app, 4);
    rec.finish(h.sim.now());
    rec.detach();
    tl.finish();
    if (end_out != nullptr)
        *end_out = h.sim.now();
    text_out = os.str();
    return r;
}

TEST(Recorder, ProducesStrictlyValidJson)
{
    std::string text;
    recordedRun(text);
    std::string err;
    EXPECT_TRUE(telemetry::validateJson(text, &err)) << err;
}

TEST(Recorder, EmitsCoreThreadAndVmTracks)
{
    std::string text;
    const jvm::RunResult r = recordedRun(text);
    ASSERT_GT(r.gc.minor_count, 0u) << "test app must trigger GC";
    ASSERT_GT(r.locks.contentions, 0u) << "test app must contend";

    const auto evs = eventLines(text);
    std::uint64_t core_names = 0;
    std::uint64_t thread_names = 0;
    std::uint64_t bursts = 0;
    std::uint64_t running = 0;
    std::uint64_t lock_blocked = 0;
    std::uint64_t at_safepoint = 0;
    std::uint64_t gc_phases = 0;
    for (const Ev &e : evs) {
        if (e.has("\"name\":\"thread_name\"") && e.has("\"pid\":1"))
            ++core_names;
        if (e.has("\"name\":\"thread_name\"") && e.has("\"pid\":2"))
            ++thread_names;
        if (e.has("\"cat\":\"burst\""))
            ++bursts;
        if (e.has("\"name\":\"running\""))
            ++running;
        if (e.has("\"name\":\"lock-blocked\""))
            ++lock_blocked;
        if (e.has("\"name\":\"at-safepoint\""))
            ++at_safepoint;
        if (e.has("\"cat\":\"gc-phase\""))
            ++gc_phases;
    }
    EXPECT_GE(core_names, 4u);
    EXPECT_GE(thread_names, 4u);
    EXPECT_GT(bursts, 0u);
    EXPECT_GT(running, 0u);
    EXPECT_GT(lock_blocked, 0u);
    EXPECT_GT(at_safepoint, 0u);
    EXPECT_GT(gc_phases, 0u);
    for (const Ev &e : evs) {
        if (e.has("\"name\":\"lock-blocked\"")) {
            EXPECT_TRUE(e.has("\"monitor\":"))
                << "lock-blocked span without monitor arg: " << e.line;
        }
    }
}

TEST(Recorder, SpanTotalsMatchRunAccounting)
{
    std::string text;
    const jvm::RunResult r = recordedRun(text);
    ASSERT_GT(r.gc_time, 0u);

    std::uint64_t ttsp = 0;
    std::uint64_t phases = 0;
    for (const Ev &e : eventLines(text)) {
        if (e.has("\"cat\":\"safepoint\""))
            ttsp += e.dur;
        if (e.has("\"cat\":\"gc-phase\""))
            phases += e.dur;
    }
    // Integer-exact by construction; 1% is the acceptance ceiling.
    EXPECT_EQ(ttsp, r.gc.total_ttsp);
    EXPECT_EQ(ttsp + phases, r.gc_time);
    EXPECT_NEAR(static_cast<double>(ttsp + phases),
                static_cast<double>(r.gc_time),
                0.01 * static_cast<double>(r.gc_time));
}

TEST(Recorder, ThreadStateSpansTileTheRunWithoutOverlap)
{
    std::string text;
    Ticks end = 0;
    recordedRun(text, &end);

    // Group state spans per tid; check begin/end monotonicity.
    std::map<std::string, std::vector<std::pair<std::uint64_t,
                                                std::uint64_t>>> per_tid;
    for (const Ev &e : eventLines(text)) {
        if (!e.has("\"cat\":\"state\""))
            continue;
        const auto tid_pos = e.line.find("\"tid\":");
        ASSERT_NE(tid_pos, std::string::npos);
        const auto tid_end = e.line.find(',', tid_pos);
        per_tid[e.line.substr(tid_pos, tid_end - tid_pos)].push_back(
            {e.ts, e.ts + e.dur});
    }
    EXPECT_GE(per_tid.size(), 4u);
    for (auto &[tid, spans] : per_tid) {
        std::sort(spans.begin(), spans.end());
        for (std::size_t i = 1; i < spans.size(); ++i) {
            EXPECT_GE(spans[i].first, spans[i - 1].second)
                << "overlapping state spans on " << tid;
        }
        EXPECT_LE(spans.back().second, end);
    }
}

TEST(Recorder, IdenticalRunsProduceIdenticalTimelines)
{
    std::string a;
    std::string b;
    recordedRun(a);
    recordedRun(b);
    EXPECT_EQ(a, b);
}

TEST(Sampler, RowCountMatchesRunTimeOverInterval)
{
    VmHarness h(4, smallHeapConfig());
    const Ticks interval = 1 * units::MS;
    telemetry::MetricSampler sampler(h.sim, h.vm, interval);
    sampler.start();
    TinyApp app(busyParams());
    const jvm::RunResult r = h.vm.run(app, 4);

    const auto expected = r.wall_time / interval;
    const auto rows = sampler.samples().size();
    EXPECT_GE(rows + 1, expected);
    EXPECT_LE(rows, expected + 1);
    ASSERT_GT(rows, 2u);

    // Samples are evenly spaced and time-ordered.
    for (std::size_t i = 0; i < rows; ++i)
        EXPECT_EQ(sampler.samples()[i].at, (i + 1) * interval);
    EXPECT_EQ(sampler.summary().running.count(), rows);
}

TEST(Sampler, CsvHasHeaderAndOneLinePerSample)
{
    VmHarness h(2, smallHeapConfig());
    telemetry::MetricSampler sampler(h.sim, h.vm, 500 * units::US);
    sampler.start();
    TinyApp app(busyParams());
    h.vm.run(app, 2);

    std::ostringstream os;
    sampler.writeCsv(os);
    std::istringstream is(os.str());
    std::string line;
    ASSERT_TRUE(std::getline(is, line));
    EXPECT_EQ(line, telemetry::MetricSampler::csvHeader());
    std::size_t rows = 0;
    while (std::getline(is, line)) {
        ++rows;
        EXPECT_EQ(std::count(line.begin(), line.end(), ','), 9)
            << line;
    }
    EXPECT_EQ(rows, sampler.samples().size());
}

TEST(Sampler, ObservesHeapAndSchedulerActivity)
{
    VmHarness h(4, smallHeapConfig());
    telemetry::MetricSampler sampler(h.sim, h.vm, 200 * units::US);
    sampler.start();
    TinyApp app(busyParams());
    h.vm.run(app, 4);

    ASSERT_GT(sampler.samples().size(), 0u);
    EXPECT_GT(sampler.summary().live_bytes.max(), 0.0);
    EXPECT_GT(sampler.summary().running.max(), 0.0);
}

TEST(Sampler, FinishFlushesFinalRowAtRunEnd)
{
    VmHarness h(4, smallHeapConfig());
    const Ticks interval = 1 * units::MS;
    telemetry::MetricSampler sampler(h.sim, h.vm, interval);
    sampler.start();
    TinyApp app(busyParams());
    const jvm::RunResult r = h.vm.run(app, 4);

    // Regression: runs whose length is not a multiple of the interval
    // used to lose everything after the last periodic tick. finish()
    // must append exactly one row at the run's final time.
    const std::size_t periodic = sampler.samples().size();
    ASSERT_GT(periodic, 0u);
    EXPECT_LT(sampler.samples().back().at, r.wall_time);

    sampler.finish(h.sim.now());
    ASSERT_EQ(sampler.samples().size(), periodic + 1);
    EXPECT_EQ(sampler.samples().back().at, r.wall_time);

    // Idempotent: a second finish at the same time adds nothing.
    sampler.finish(h.sim.now());
    EXPECT_EQ(sampler.samples().size(), periodic + 1);

    // The final row lands in the CSV dump.
    std::ostringstream os;
    sampler.writeCsv(os);
    const std::string csv = os.str();
    const std::string last_row = std::to_string(r.wall_time) + ",";
    EXPECT_NE(csv.find("\n" + last_row), std::string::npos);
}

TEST(Sampler, IsAPureObserver)
{
    TinyAppParams p = busyParams();
    jvm::RunResult plain;
    jvm::RunResult sampled;
    {
        VmHarness h(4, smallHeapConfig());
        TinyApp app(p);
        plain = h.vm.run(app, 4);
    }
    {
        VmHarness h(4, smallHeapConfig());
        telemetry::MetricSampler sampler(h.sim, h.vm, 300 * units::US);
        sampler.start();
        TinyApp app(p);
        sampled = h.vm.run(app, 4);
    }
    EXPECT_EQ(plain.wall_time, sampled.wall_time);
    EXPECT_EQ(plain.gc_time, sampled.gc_time);
    EXPECT_EQ(plain.gc.minor_count, sampled.gc.minor_count);
    EXPECT_EQ(plain.locks.contentions, sampled.locks.contentions);
}

} // namespace
