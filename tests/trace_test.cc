/**
 * @file
 * Tests for the Elephant-Tracks-style tracing pipeline: binary
 * round-trips, the tracing agent, and the lifespan analyzer's agreement
 * with the heap's own histogram.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "base/random.hh"
#include "test_apps.hh"
#include "trace/trace.hh"

namespace {

using namespace jscale;
using namespace jscale::trace;
using test::TinyApp;
using test::TinyAppParams;
using test::VmHarness;

TraceEvent
randomEvent(Rng &rng)
{
    TraceEvent ev;
    ev.kind = static_cast<TraceEventKind>(1 + rng.below(6));
    ev.gc_kind = static_cast<std::uint8_t>(rng.below(2));
    ev.thread = static_cast<std::uint32_t>(rng.below(64));
    ev.time = rng.next();
    ev.object = rng.next();
    ev.size = rng.below(1 << 20);
    ev.lifespan = rng.next() >> 20;
    ev.site = static_cast<std::uint32_t>(rng.below(100));
    return ev;
}

TEST(BinaryTrace, RoundTripsExactly)
{
    Rng rng(31);
    std::vector<TraceEvent> events;
    for (int i = 0; i < 500; ++i)
        events.push_back(randomEvent(rng));

    std::stringstream buf;
    {
        BinaryTraceWriter writer(buf);
        for (const auto &ev : events)
            writer.append(ev);
        writer.flush();
        EXPECT_EQ(writer.recordCount(), events.size());
    }

    BinaryTraceReader reader(buf);
    std::vector<TraceEvent> decoded;
    TraceEvent ev;
    while (reader.next(ev))
        decoded.push_back(ev);
    ASSERT_EQ(decoded.size(), events.size());
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(decoded[i], events[i]) << "record " << i;
}

TEST(BinaryTrace, RejectsForeignStream)
{
    std::stringstream buf;
    buf << "this is not a trace at all";
    EXPECT_EXIT(BinaryTraceReader reader(buf),
                ::testing::ExitedWithCode(1), "bad magic");
}

TEST(BinaryTrace, EmptyTraceIsValid)
{
    std::stringstream buf;
    BinaryTraceWriter writer(buf);
    writer.flush();
    BinaryTraceReader reader(buf);
    TraceEvent ev;
    EXPECT_FALSE(reader.next(ev));
}

TEST(TextTrace, OneLinePerEvent)
{
    std::ostringstream os;
    TextTraceWriter writer(os);
    TraceEvent alloc;
    alloc.kind = TraceEventKind::Alloc;
    alloc.thread = 3;
    alloc.time = 100;
    alloc.object = 42;
    alloc.size = 64;
    writer.append(alloc);
    TraceEvent death = alloc;
    death.kind = TraceEventKind::Death;
    death.lifespan = 4096;
    writer.append(death);
    const std::string s = os.str();
    EXPECT_NE(s.find("alloc"), std::string::npos);
    EXPECT_NE(s.find("lifespan=4096"), std::string::npos);
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);
}

TEST(ObjectTracer, EmitsInOrderAndMatchesHeapCounters)
{
    VmHarness h(4);
    MemoryTraceSink sink;
    ObjectTracer tracer(sink);
    h.vm.listeners().add(&tracer);
    TinyAppParams p;
    p.tasks_per_thread = 30;
    TinyApp app(p);
    const jvm::RunResult r = h.vm.run(app, 4);

    std::uint64_t allocs = 0;
    std::uint64_t deaths = 0;
    Ticks prev_time = 0;
    for (const auto &ev : sink.events()) {
        EXPECT_GE(ev.time, prev_time) << "trace out of order";
        prev_time = ev.time;
        allocs += ev.kind == TraceEventKind::Alloc;
        deaths += ev.kind == TraceEventKind::Death;
    }
    EXPECT_EQ(allocs, r.heap.objects_allocated);
    EXPECT_EQ(deaths, r.heap.objects_died);
    EXPECT_EQ(tracer.eventsEmitted(), sink.events().size());
}

TEST(ObjectTracer, ThreadLifecycleEventsPresent)
{
    VmHarness h(4);
    MemoryTraceSink sink;
    ObjectTracer tracer(sink);
    h.vm.listeners().add(&tracer);
    TinyAppParams p;
    TinyApp app(p);
    h.vm.run(app, 3);
    int starts = 0;
    int ends = 0;
    for (const auto &ev : sink.events()) {
        starts += ev.kind == TraceEventKind::ThreadStart;
        ends += ev.kind == TraceEventKind::ThreadEnd;
    }
    EXPECT_EQ(starts, 3);
    EXPECT_EQ(ends, 3);
}

TEST(LifespanAnalyzer, AgreesWithHeapHistogram)
{
    VmHarness h(4);
    MemoryTraceSink sink;
    ObjectTracer tracer(sink);
    h.vm.listeners().add(&tracer);
    TinyAppParams p;
    p.tasks_per_thread = 60;
    p.allocs_per_task = 4;
    TinyApp app(p);
    const jvm::RunResult r = h.vm.run(app, 4);

    LifespanAnalyzer analyzer;
    analyzer.feedAll(sink.events());
    EXPECT_EQ(analyzer.deaths(), r.heap.objects_died);
    EXPECT_EQ(analyzer.allocs(), r.heap.objects_allocated);
    for (const auto t : paperLifespanThresholds()) {
        EXPECT_DOUBLE_EQ(analyzer.histogram().fractionBelow(t),
                         r.heap.lifespan.fractionBelow(t))
            << "threshold " << t;
    }
}

TEST(LifespanAnalyzer, PerThreadBreakdownSumsToTotal)
{
    VmHarness h(4);
    MemoryTraceSink sink;
    ObjectTracer tracer(sink);
    h.vm.listeners().add(&tracer);
    TinyAppParams p;
    TinyApp app(p);
    h.vm.run(app, 4);

    LifespanAnalyzer analyzer;
    analyzer.feedAll(sink.events());
    std::uint64_t per_thread_total = 0;
    for (const auto &[tid, hist] : analyzer.perThread())
        per_thread_total += hist.totalWeight();
    EXPECT_EQ(per_thread_total, analyzer.histogram().totalWeight());
}

TEST(LifespanAnalyzer, PerSiteBreakdownAndTopSites)
{
    LifespanAnalyzer a;
    auto death = [](std::uint32_t site, Bytes size, Bytes lifespan) {
        TraceEvent ev;
        ev.kind = TraceEventKind::Death;
        ev.site = site;
        ev.size = size;
        ev.lifespan = lifespan;
        return ev;
    };
    auto alloc = [](std::uint32_t site, Bytes size) {
        TraceEvent ev;
        ev.kind = TraceEventKind::Alloc;
        ev.site = site;
        ev.size = size;
        return ev;
    };
    // Site 1: two small short-lived; site 2: one big long-lived.
    a.feed(alloc(1, 100));
    a.feed(alloc(1, 100));
    a.feed(alloc(2, 5000));
    a.feed(death(1, 100, 64));
    a.feed(death(1, 100, 128));
    a.feed(death(2, 5000, 1 << 20));

    ASSERT_EQ(a.perSite().size(), 2u);
    const auto top = a.topSites(10);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].site, 2u); // by bytes
    EXPECT_EQ(top[0].objects, 1u);
    EXPECT_EQ(top[0].bytes, 5000u);
    EXPECT_GT(top[0].median_lifespan, top[1].median_lifespan);
    EXPECT_EQ(top[1].objects, 2u);

    const auto top1 = a.topSites(1);
    ASSERT_EQ(top1.size(), 1u);
    EXPECT_EQ(top1[0].site, 2u);
}

TEST(TraceEventKindName, AllNamed)
{
    EXPECT_STREQ(traceEventKindName(TraceEventKind::Alloc), "alloc");
    EXPECT_STREQ(traceEventKindName(TraceEventKind::Death), "death");
    EXPECT_STREQ(traceEventKindName(TraceEventKind::GcStart), "gc-start");
    EXPECT_STREQ(traceEventKindName(TraceEventKind::GcEnd), "gc-end");
}

} // namespace
