/**
 * @file
 * Queue-equivalence suite: the calendar queue must dispatch in exactly
 * the order of the (time, sequence)-keyed min-heap it replaced.
 *
 * A test-only reference min-heap replays fuzz-seeded traces of
 * schedule / cancel / reschedule / dispatch operations alongside the
 * real EventQueue; every dispatched event must match one-for-one. The
 * traces deliberately stress the calendar's edge cases: duplicate
 * ticks, deep horizons that force window re-tuning, schedules behind
 * the cursor, cancellations of lane heads and of overflow entries, and
 * interleaved drain/schedule phases that grow and shrink the backlog.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "base/random.hh"
#include "sim/event.hh"

namespace {

using namespace jscale;
using sim::Event;
using sim::EventQueue;

/** Reference implementation: the exact (when, seq) min-heap semantics
 *  the production queue replaced, including lazy cancellation. */
class ReferenceQueue
{
  public:
    void
    schedule(int id, Ticks when)
    {
        heap_.push(Entry{when, next_seq_, id});
        live_seq_[id] = next_seq_;
        ++next_seq_;
        ++live_;
    }

    void
    cancel(int id)
    {
        const auto it = live_seq_.find(id);
        if (it == live_seq_.end() || it->second == kNone)
            return;
        cancelled_.push_back(it->second);
        it->second = kNone;
        --live_;
    }

    bool
    scheduled(int id) const
    {
        const auto it = live_seq_.find(id);
        return it != live_seq_.end() && it->second != kNone;
    }
    bool empty() const { return live_ == 0; }

    /** Pop the earliest live entry; returns (id, when). */
    std::pair<int, Ticks>
    pop()
    {
        for (;;) {
            const Entry e = heap_.top();
            heap_.pop();
            const auto it =
                std::find(cancelled_.begin(), cancelled_.end(), e.seq);
            if (it != cancelled_.end()) {
                cancelled_.erase(it);
                continue;
            }
            live_seq_[e.id] = kNone;
            --live_;
            return {e.id, e.when};
        }
    }

  private:
    struct Entry
    {
        Ticks when;
        std::uint64_t seq;
        int id;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    static constexpr std::uint64_t kNone = ~std::uint64_t{0};

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    std::vector<std::uint64_t> cancelled_;
    std::map<int, std::uint64_t> live_seq_;
    std::uint64_t next_seq_ = 0;
    std::size_t live_ = 0;
};

/** Event that records (id, when) of its firing. */
class TraceEvent : public Event
{
  public:
    TraceEvent(std::vector<std::pair<int, Ticks>> &log, int id)
        : log_(log), id_(id)
    {}

    void process() override { log_.push_back({id_, when()}); }
    std::string name() const override { return "trace-event"; }

  private:
    std::vector<std::pair<int, Ticks>> &log_;
    int id_;
};

/**
 * Replay one seeded random trace through both queues and assert
 * identical dispatch order. @p horizon controls how far apart event
 * times spread (deep horizons force the calendar to rebucket).
 */
void
replayTrace(std::uint64_t seed, int n_events, Ticks horizon, int rounds)
{
    Rng rng(seed);
    std::vector<std::pair<int, Ticks>> dispatched;
    std::vector<std::unique_ptr<TraceEvent>> events;
    for (int i = 0; i < n_events; ++i)
        events.push_back(std::make_unique<TraceEvent>(dispatched, i));

    EventQueue queue;
    ReferenceQueue ref;
    Ticks now = 0;

    for (int round = 0; round < rounds; ++round) {
        // Mixed schedule/cancel/reschedule phase.
        for (int op = 0; op < n_events; ++op) {
            const int id = static_cast<int>(rng.below(
                static_cast<std::uint64_t>(n_events)));
            Event *ev = events[id].get();
            const std::uint64_t kind = rng.below(10);
            if (kind < 6) {
                if (!ev->scheduled()) {
                    const Ticks when = now + 1 + rng.below(horizon);
                    queue.schedule(ev, when);
                    ref.schedule(id, when);
                }
            } else if (kind < 8) {
                if (ev->scheduled()) {
                    queue.deschedule(ev);
                    ref.cancel(id);
                }
            } else {
                const Ticks when = now + 1 + rng.below(horizon);
                if (ev->scheduled())
                    ref.cancel(id);
                queue.reschedule(ev, when);
                ref.schedule(id, when);
            }
            ASSERT_EQ(ev->scheduled(), ref.scheduled(id));
        }
        ASSERT_EQ(queue.size(), ref.empty() ? 0u : queue.size());

        // Drain roughly half the backlog (fully on the last round),
        // checking the dispatch order entry by entry.
        const std::size_t target =
            round + 1 == rounds ? 0 : queue.size() / 2;
        while (queue.size() > target) {
            ASSERT_FALSE(ref.empty());
            const Ticks next = queue.nextTime();
            Event *ev = queue.pop();
            ASSERT_NE(ev, nullptr);
            now = ev->when();
            ASSERT_EQ(next, now);
            dispatched.clear();
            ev->process();
            ASSERT_EQ(dispatched.size(), 1u);
            const auto [ref_id, ref_when] = ref.pop();
            ASSERT_EQ(dispatched[0].first, ref_id)
                << "seed " << seed << ": dispatch order diverged at t="
                << now;
            ASSERT_EQ(dispatched[0].second, ref_when);
        }
    }
    ASSERT_TRUE(queue.empty());
    ASSERT_TRUE(ref.empty());
}

class QueueEquivalence : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(QueueEquivalence, NarrowHorizonDenseTicks)
{
    // Many collisions per tick: tie-breaking order is the whole story.
    replayTrace(GetParam(), 64, 16, 4);
}

TEST_P(QueueEquivalence, MediumHorizon)
{
    replayTrace(GetParam() ^ 0x9e3779b9, 128, 4096, 3);
}

TEST_P(QueueEquivalence, DeepHorizonForcesRebuckets)
{
    // Spread far beyond any initial window so overflow redistribution
    // and window re-tuning happen repeatedly mid-trace.
    replayTrace(GetParam() + 1000, 96, Ticks{1} << 34, 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueEquivalence,
                         ::testing::Range<std::uint64_t>(0, 25));

TEST(QueueEquivalenceEdge, BacklogGrowsAndDrainsRepeatedly)
{
    // Backlog oscillation: grow to 2k, drain to near-empty, regrow —
    // the calendar must re-tune in both directions without reordering.
    replayTrace(77, 2048, 1 << 20, 5);
}

TEST(QueueEquivalenceEdge, SingleTickAllEvents)
{
    // Degenerate width: every event on one tick, pure sequence order.
    Rng rng(3);
    std::vector<std::pair<int, Ticks>> log;
    std::vector<std::unique_ptr<TraceEvent>> events;
    EventQueue queue;
    for (int i = 0; i < 500; ++i) {
        events.push_back(std::make_unique<TraceEvent>(log, i));
        queue.schedule(events.back().get(), 42);
    }
    while (Event *ev = queue.pop())
        ev->process();
    ASSERT_EQ(log.size(), 500u);
    for (int i = 0; i < 500; ++i)
        EXPECT_EQ(log[static_cast<std::size_t>(i)].first, i);
}

} // namespace
