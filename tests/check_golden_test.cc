/**
 * @file
 * Golden-store tests: the "jscale-golden v1" text format round-trips
 * snapshots at full precision, the parser rejects malformed files with
 * line-numbered diagnostics, and the differ reports value drift,
 * missing/extra fields and missing/extra sweep points by label.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "check/golden.hh"

namespace {

using namespace jscale;
using check::FieldDiff;
using check::GoldenFile;
using check::GoldenRun;

GoldenFile
sampleFile()
{
    GoldenFile f;
    f.config.emplace_back("app", "xalan");
    f.config.emplace_back("fingerprint", "seed=42 scale=0.05");
    GoldenRun r1;
    r1.app = "xalan";
    r1.threads = 1;
    r1.stats.add("wall_time", 40805945, "ticks");
    r1.stats.add("speedup", 1.0);
    // A value that only survives max-precision serialization.
    r1.stats.add("gc.share", 0.1 + 0.2);
    GoldenRun r2;
    r2.app = "xalan";
    r2.threads = 8;
    r2.stats.add("wall_time", 11096399, "ticks");
    r2.stats.add("heap.bytes_allocated", 1234567890.0, "B");
    f.runs = {r1, r2};
    return f;
}

TEST(Golden, WriteReadRoundTripsAtFullPrecision)
{
    const GoldenFile file = sampleFile();
    std::stringstream ss;
    check::writeGolden(ss, file);

    GoldenFile back;
    std::string err;
    ASSERT_TRUE(check::readGolden(ss, back, err)) << err;
    EXPECT_EQ(back.configValue("app"), "xalan");
    EXPECT_EQ(back.configValue("fingerprint"), "seed=42 scale=0.05");
    EXPECT_EQ(back.configValue("absent"), "");
    ASSERT_EQ(back.runs.size(), 2u);
    EXPECT_EQ(back.runs[0].label(), "xalan@1");
    EXPECT_EQ(back.runs[1].label(), "xalan@8");

    // Exact double equality after a text round-trip, including the
    // non-representable 0.30000000000000004.
    EXPECT_EQ(back.runs[0].stats.get("gc.share"), 0.1 + 0.2);
    EXPECT_EQ(back.runs[0].stats.get("wall_time"), 40805945.0);
    EXPECT_EQ(back.runs[1].stats.get("heap.bytes_allocated"),
              1234567890.0);

    // A round-tripped file diffs clean against its own runs.
    EXPECT_TRUE(check::diffGolden(back, file.runs).empty());
}

TEST(Golden, ReaderRejectsMalformedFilesWithDiagnostics)
{
    const auto read_err = [](const std::string &text) {
        std::istringstream is(text);
        GoldenFile out;
        std::string err;
        EXPECT_FALSE(check::readGolden(is, out, err)) << text;
        return err;
    };

    EXPECT_EQ(read_err(""), "not a jscale-golden v1 file");
    EXPECT_EQ(read_err("something else\n"), "not a jscale-golden v1 file");
    // No runs at all.
    EXPECT_NE(read_err("jscale-golden v1\nconfig app=x\n").find("no runs"),
              std::string::npos);
    // Truncated inside a run.
    EXPECT_NE(read_err("jscale-golden v1\nrun xalan 4\nstat a 1\n")
                  .find("truncated"),
              std::string::npos);
    // Stat outside a run, unknown verb, malformed config — all carry
    // the offending line number.
    EXPECT_NE(read_err("jscale-golden v1\nstat a 1\n").find("line 2"),
              std::string::npos);
    EXPECT_NE(read_err("jscale-golden v1\nfrobnicate\n").find("line 2"),
              std::string::npos);
    EXPECT_NE(read_err("jscale-golden v1\nconfig junk\n").find("line 2"),
              std::string::npos);
}

TEST(Golden, CommentsAndBlankLinesAreIgnored)
{
    std::istringstream is("jscale-golden v1\n"
                          "# provenance comment\n"
                          "\n"
                          "run h2 4\n"
                          "stat wall_time 5 ticks\n"
                          "end\n");
    GoldenFile out;
    std::string err;
    ASSERT_TRUE(check::readGolden(is, out, err)) << err;
    ASSERT_EQ(out.runs.size(), 1u);
    EXPECT_EQ(out.runs[0].stats.get("wall_time"), 5.0);
}

TEST(Golden, DiffFindsValueDriftMissingAndExtraFields)
{
    stats::StatSnapshot recorded, fresh;
    recorded.add("a", 1.0);
    recorded.add("b", 2.0);
    recorded.add("same", 3.5);
    fresh.add("a", 1.5);   // drifted
    fresh.add("same", 3.5); // unchanged
    fresh.add("c", 9.0);   // new in fresh

    const auto diffs = check::diffSnapshots("xalan@4", recorded, fresh);
    ASSERT_EQ(diffs.size(), 3u);
    EXPECT_EQ(diffs[0].field, "a");
    EXPECT_EQ(diffs[0].kind, "value");
    EXPECT_EQ(diffs[0].expected, 1.0);
    EXPECT_EQ(diffs[0].actual, 1.5);
    EXPECT_EQ(diffs[1].field, "b");
    EXPECT_EQ(diffs[1].kind, "missing");
    EXPECT_EQ(diffs[2].field, "c");
    EXPECT_EQ(diffs[2].kind, "extra");

    // The rendering names the sweep point, the field and both values.
    const std::string line = diffs[0].format();
    EXPECT_NE(line.find("xalan@4 a"), std::string::npos) << line;
    EXPECT_NE(line.find("recorded 1"), std::string::npos) << line;
    EXPECT_NE(line.find("fresh 1.5"), std::string::npos) << line;
}

TEST(Golden, NanEqualsNanInVerification)
{
    // Stats like USL fits can legitimately be NaN on degenerate runs;
    // a recorded NaN matching a fresh NaN is not drift.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    stats::StatSnapshot recorded, fresh;
    recorded.add("fit.kappa", nan);
    fresh.add("fit.kappa", nan);
    EXPECT_TRUE(check::diffSnapshots("x@1", recorded, fresh).empty());

    stats::StatSnapshot real;
    real.add("fit.kappa", 0.25);
    EXPECT_EQ(check::diffSnapshots("x@1", recorded, real).size(), 1u);
}

TEST(Golden, DiffGoldenMatchesSweepPointsByAppAndThreads)
{
    const GoldenFile file = sampleFile();

    // Fresh results: xalan@1 missing, xalan@8 drifted, h2@4 unexpected.
    GoldenRun drifted = file.runs[1];
    drifted.stats = {};
    drifted.stats.add("wall_time", 999.0, "ticks");
    drifted.stats.add("heap.bytes_allocated", 1234567890.0, "B");
    GoldenRun surplus;
    surplus.app = "h2";
    surplus.threads = 4;

    const auto diffs = check::diffGolden(file, {drifted, surplus});
    ASSERT_EQ(diffs.size(), 3u);
    EXPECT_EQ(diffs[0].field, "xalan@1");
    EXPECT_EQ(diffs[0].kind, "missing");
    EXPECT_EQ(diffs[1].run, "xalan@8");
    EXPECT_EQ(diffs[1].field, "wall_time");
    EXPECT_EQ(diffs[1].kind, "value");
    EXPECT_EQ(diffs[2].field, "h2@4");
    EXPECT_EQ(diffs[2].kind, "extra");
}

} // namespace
