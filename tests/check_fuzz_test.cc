/**
 * @file
 * Fuzz-driver tests: case derivation is deterministic and parseable,
 * clean campaigns pass, a sabotaged campaign fails, shrinks to a
 * minimal still-failing case within budget, and round-trips through
 * the reproducer artifact.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/fuzz.hh"

namespace {

using namespace jscale;
using check::FuzzCase;

TEST(Fuzz, CaseDerivationIsDeterministicAndInRange)
{
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        const FuzzCase a = check::caseForSeed(seed);
        const FuzzCase b = check::caseForSeed(seed);
        EXPECT_EQ(a.describe(), b.describe());

        EXPECT_GE(a.threads, 1u);
        EXPECT_LE(a.threads, 8u);
        EXPECT_GE(a.tasks, 20u);
        EXPECT_GE(a.monitors, 1u);
        EXPECT_GE(a.heap, 3 * units::MiB);
        EXPECT_GE(a.fault_intensity, 0.0);
        EXPECT_LE(a.fault_intensity, 1.0);
        EXPECT_EQ(a.sabotage, check::Sabotage::None);
    }
}

TEST(Fuzz, DescribeParseRoundTrips)
{
    for (const std::uint64_t seed : {1ULL, 42ULL, 999ULL}) {
        const FuzzCase c = check::caseForSeed(seed);
        FuzzCase parsed;
        std::string err;
        ASSERT_TRUE(FuzzCase::parse(c.describe(), parsed, err)) << err;
        EXPECT_EQ(parsed.describe(), c.describe());
    }
}

TEST(Fuzz, ParseRejectsJunk)
{
    FuzzCase out;
    std::string err;
    // Junk token, missing seed, degenerate geometry.
    EXPECT_FALSE(FuzzCase::parse("what=ever", out, err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(FuzzCase::parse("threads=4 tasks=10", out, err));
    EXPECT_FALSE(
        FuzzCase::parse("seed=1 threads=0 tasks=10", out, err));
    EXPECT_FALSE(FuzzCase::parse("seed=1 heap=5", out, err));
    EXPECT_FALSE(FuzzCase::parse("", out, err));
}

TEST(Fuzz, SabotageNamesRoundTrip)
{
    for (const auto s :
         {check::Sabotage::None, check::Sabotage::DupAlloc,
          check::Sabotage::PhantomDeath, check::Sabotage::DoubleRelease,
          check::Sabotage::IllegalHandoff}) {
        check::Sabotage parsed;
        ASSERT_TRUE(check::parseSabotage(check::sabotageName(s), parsed));
        EXPECT_EQ(parsed, s);
    }
    check::Sabotage parsed;
    EXPECT_FALSE(check::parseSabotage("subtle", parsed));
}

TEST(Fuzz, PolicyDimensionIsDrawnParsedAndDefaulted)
{
    // The seed space exercises every admission policy...
    bool seen[4] = {false, false, false, false};
    for (std::uint64_t seed = 1; seed <= 200; ++seed)
        seen[static_cast<std::size_t>(check::caseForSeed(seed).policy)] =
            true;
    for (const jvm::LockPolicy p : jvm::kAllLockPolicies)
        EXPECT_TRUE(seen[static_cast<std::size_t>(p)])
            << jvm::lockPolicyName(p);

    // ...a pre-policy case line still parses (defaults to fifo)...
    FuzzCase legacy;
    std::string err;
    ASSERT_TRUE(FuzzCase::parse(
        "seed=7 threads=2 tasks=30 monitors=1 heap=4194304", legacy, err))
        << err;
    EXPECT_EQ(legacy.policy, jvm::LockPolicy::Fifo);

    // ...and junk policies are rejected.
    FuzzCase out;
    EXPECT_FALSE(FuzzCase::parse("seed=1 policy=anarchic", out, err));
    EXPECT_FALSE(err.empty());
}

TEST(Fuzz, IllegalHandoffIsCaughtUnderEveryPolicyAndShrinksToFifo)
{
    // The saboteur fabricates a contended grant to the releasing
    // thread — a grantee that never queued — which every admission
    // policy's oracle model must reject.
    for (const jvm::LockPolicy p : jvm::kAllLockPolicies) {
        FuzzCase c = check::caseForSeed(42);
        c.threads = 6;
        c.monitors = 1; // one hot monitor guarantees contention
        c.policy = p;
        c.sabotage = check::Sabotage::IllegalHandoff;
        const check::FuzzOutcome out = check::runFuzzCase(c);
        ASSERT_FALSE(out.clean()) << jvm::lockPolicyName(p);
        ASSERT_FALSE(out.violations.empty()) << jvm::lockPolicyName(p);
        EXPECT_EQ(out.violations[0].oracle, "monitor-fifo")
            << out.violations[0].format();
    }

    // The shrinker walks the policy dimension back to fifo while the
    // bug keeps firing.
    FuzzCase c = check::caseForSeed(42);
    c.threads = 6;
    c.monitors = 1;
    c.policy = jvm::LockPolicy::Lcr;
    c.sabotage = check::Sabotage::IllegalHandoff;
    ASSERT_FALSE(check::runFuzzCase(c).clean());
    std::uint32_t used = 0;
    const FuzzCase shrunk = check::shrinkCase(c, /*budget=*/48, &used);
    EXPECT_FALSE(check::runFuzzCase(shrunk).clean());
    EXPECT_EQ(shrunk.policy, jvm::LockPolicy::Fifo);
    EXPECT_LE(used, 48u);
}

TEST(Fuzz, CleanCampaignReportsNoFailures)
{
    std::vector<std::uint64_t> seeds;
    for (std::uint64_t s = 100; s < 112; ++s)
        seeds.push_back(s);
    const check::FuzzReport report = check::runFuzzCampaign(
        seeds, check::Sabotage::None, /*shrink_budget=*/16, nullptr);
    EXPECT_FALSE(report.failed());
    EXPECT_EQ(report.cases_run, seeds.size());
    EXPECT_GT(report.total_checks, 0u);
}

TEST(Fuzz, SabotagedCampaignFailsAndShrinksToAMinimalCase)
{
    const check::FuzzReport report = check::runFuzzCampaign(
        {42}, check::Sabotage::DupAlloc, /*shrink_budget=*/64, nullptr);
    ASSERT_TRUE(report.failed());
    ASSERT_EQ(report.failures.size(), 1u);
    EXPECT_FALSE(report.failures[0].clean());

    // The shrunk case still fails (it is the reproducer)...
    const check::FuzzOutcome replay = check::runFuzzCase(report.shrunk);
    EXPECT_FALSE(replay.clean());

    // ...and the one-fault sabotage shrinks all the way down: the bug
    // needs exactly one thread, one task and no fault schedule.
    EXPECT_EQ(report.shrunk.threads, 1u);
    EXPECT_EQ(report.shrunk.tasks, 1u);
    EXPECT_DOUBLE_EQ(report.shrunk.fault_intensity, 0.0);
    EXPECT_FALSE(report.shrunk.governed);
    EXPECT_LE(report.shrink_runs, 64u);
}

TEST(Fuzz, ShrinkStopsWithinBudget)
{
    check::FuzzCase c = check::caseForSeed(42);
    c.sabotage = check::Sabotage::DoubleRelease;
    std::uint32_t used = 0;
    const check::FuzzCase shrunk = check::shrinkCase(c, 3, &used);
    EXPECT_LE(used, 3u);
    // Whatever the budget allowed, the result must still fail.
    EXPECT_FALSE(check::runFuzzCase(shrunk).clean());
}

TEST(Fuzz, ReproducerRoundTripsThroughTheArtifact)
{
    const check::FuzzReport report = check::runFuzzCampaign(
        {42}, check::Sabotage::PhantomDeath, 32, nullptr);
    ASSERT_TRUE(report.failed());

    std::ostringstream os;
    check::writeReproducer(os, report);
    const std::string artifact = os.str();
    EXPECT_NE(artifact.find("jscale-fuzz-repro v1"), std::string::npos);
    EXPECT_NE(artifact.find("case seed="), std::string::npos);
    // The artifact carries the diagnosed violation as provenance.
    EXPECT_NE(artifact.find("# violation:"), std::string::npos)
        << artifact;

    const std::string path = "fuzztest-roundtrip.repro";
    {
        std::ofstream f(path);
        f << artifact;
    }
    check::FuzzCase replayed;
    std::string err;
    ASSERT_TRUE(check::readReproducer(path, replayed, err)) << err;
    EXPECT_EQ(replayed.describe(), report.shrunk.describe());
    std::remove(path.c_str());
}

TEST(Fuzz, ReadReproducerRejectsMissingAndMalformedFiles)
{
    check::FuzzCase out;
    std::string err;
    EXPECT_FALSE(check::readReproducer("no-such-file.repro", out, err));
    EXPECT_FALSE(err.empty());

    const std::string path = "fuzztest-malformed.repro";
    {
        std::ofstream f(path);
        f << "jscale-fuzz-repro v1\n# no case line\n";
    }
    EXPECT_FALSE(check::readReproducer(path, out, err));
    std::remove(path.c_str());
}

} // namespace
