/**
 * @file
 * Tests for VM helper threads: JIT-style burst/back-off behaviour and
 * the fixed-period maintenance daemon.
 */

#include <gtest/gtest.h>

#include "jvm/threads/helper.hh"
#include "machine/machine.hh"
#include "os/scheduler.hh"
#include "sim/simulation.hh"

namespace {

using namespace jscale;
using jvm::HelperKind;
using jvm::HelperThread;

struct Bundle
{
    explicit Bundle(std::uint32_t cores)
        : sim(1), mach(machine::Machine::testMachine_2p8c()),
          sched((mach.enableCores(cores), sim), mach)
    {}

    sim::Simulation sim;
    machine::Machine mach;
    os::Scheduler sched;
};

TEST(HelperThread, JitBurstsConsumeCpuAndBackOff)
{
    Bundle b(1);
    HelperThread jit(b.sched, HelperKind::JitCompiler, 200 * units::US,
                     1 * units::MS, 1.5, Rng(3), "jit");
    jit.bindOsThread(b.sched.registerThread(&jit, os::ThreadKind::Helper));
    b.sched.start(jit.osThread());
    b.sim.run(50 * units::MS);
    const Ticks early_cpu = jit.osThread()->cpuTime();
    EXPECT_GT(early_cpu, 0u);
    b.sim.run(500 * units::MS);
    const Ticks late_cpu = jit.osThread()->cpuTime() - early_cpu;
    // Back-off: later activity density is much lower than early.
    EXPECT_LT(static_cast<double>(late_cpu) / 450.0,
              static_cast<double>(early_cpu) / 50.0);
    EXPECT_GT(jit.osThread()->sleepTime(), 0u);
}

TEST(HelperThread, PeriodicDaemonKeepsFixedCadence)
{
    Bundle b(1);
    HelperThread daemon(b.sched, HelperKind::PeriodicDaemon,
                        50 * units::US, 10 * units::MS, 1.0, Rng(5),
                        "daemon");
    daemon.bindOsThread(
        b.sched.registerThread(&daemon, os::ThreadKind::Daemon));
    b.sched.start(daemon.osThread());
    b.sim.run(200 * units::MS);
    // ~20 periods of ~50us bursts (exponential burst lengths).
    const auto dispatches = daemon.osThread()->dispatches();
    EXPECT_GE(dispatches, 15u);
    EXPECT_LE(dispatches, 40u);
}

TEST(HelperThread, InvalidTimingDies)
{
    Bundle b(1);
    EXPECT_DEATH(HelperThread(b.sched, HelperKind::JitCompiler, 0,
                              1 * units::MS, 1.2, Rng(1), "bad"),
                 "positive");
    EXPECT_DEATH(HelperThread(b.sched, HelperKind::JitCompiler,
                              1 * units::US, 1 * units::MS, 0.5, Rng(1),
                              "bad"),
                 "back-off");
}

} // namespace
