/**
 * @file
 * Tests for the gnuplot figure emitters: files written, data columns
 * consistent with the sweeps, scripts reference their data files.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/plots.hh"

namespace {

using namespace jscale;
namespace fs = std::filesystem;

jvm::RunResult
fakeRun(const std::string &app, std::uint32_t threads)
{
    jvm::RunResult r;
    r.app_name = app;
    r.threads = threads;
    r.wall_time = 1000000;
    r.gc_time = 1000 * threads;
    r.locks.acquisitions = 100 * threads;
    r.locks.contentions = 10 * threads;
    r.heap.lifespan.add(100, threads);
    r.heap.lifespan.add(100000, 100 - threads);
    return r;
}

core::SweepSet
sweeps()
{
    core::SweepSet s;
    for (const std::string app : {"xalan", "eclipse", "sunflow"}) {
        for (const std::uint32_t t : {4u, 16u, 48u})
            s[app].push_back(fakeRun(app, t));
    }
    return s;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

struct TempDir
{
    TempDir() : path(fs::temp_directory_path() / "jscale_plots_test")
    {
        fs::create_directories(path);
    }

    ~TempDir() { fs::remove_all(path); }

    fs::path path;
};

TEST(Plots, LockFigureHasOneColumnPerApp)
{
    TempDir tmp;
    const auto files =
        core::writeLockFigure(tmp.path.string(), sweeps(), false);
    ASSERT_EQ(files.size(), 2u);
    const std::string dat = slurp(files[0]);
    std::istringstream lines(dat);
    std::string header;
    std::getline(lines, header);
    EXPECT_EQ(header, "# threads eclipse sunflow xalan");
    std::string row;
    std::size_t rows = 0;
    while (std::getline(lines, row)) {
        if (row.empty())
            continue;
        std::istringstream cells(row);
        int v;
        int count = 0;
        while (cells >> v)
            ++count;
        EXPECT_EQ(count, 4);
        ++rows;
    }
    EXPECT_EQ(rows, 3u);
    // The script references the data file.
    EXPECT_NE(slurp(files[1]).find(files[0]), std::string::npos);
}

TEST(Plots, LifespanFigureHasOneCurvePerSetting)
{
    TempDir tmp;
    const auto s = sweeps();
    const auto files = core::writeLifespanFigure(
        tmp.path.string(), "xalan", s.at("xalan"));
    const std::string dat = slurp(files[0]);
    EXPECT_NE(dat.find("t4"), std::string::npos);
    EXPECT_NE(dat.find("t48"), std::string::npos);
    const std::string gp = slurp(files[1]);
    EXPECT_NE(gp.find("48 threads"), std::string::npos);
    EXPECT_NE(gp.find("logscale x"), std::string::npos);
}

TEST(Plots, MutatorGcFigureUsesStackedHistograms)
{
    TempDir tmp;
    const auto files =
        core::writeMutatorGcFigure(tmp.path.string(), sweeps());
    const std::string gp = slurp(files[1]);
    EXPECT_NE(gp.find("rowstacked"), std::string::npos);
    const std::string dat = slurp(files[0]);
    EXPECT_NE(dat.find("xalan 48"), std::string::npos);
}

TEST(Plots, WriteAllFiguresCoversThePaperSet)
{
    TempDir tmp;
    const auto files = core::writeAllFigures(tmp.path.string(), sweeps());
    // fig1a + fig1b (2 files each) + xalan + eclipse lifespans (2 each)
    // + fig2 (2) = 10.
    EXPECT_EQ(files.size(), 10u);
    for (const auto &f : files)
        EXPECT_TRUE(fs::exists(f)) << f;
}

} // namespace
