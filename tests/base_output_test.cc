/**
 * @file
 * Tests for the text-table renderer, CSV writer, unit formatters and
 * logging helpers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "base/logging.hh"
#include "base/output.hh"
#include "base/units.hh"

namespace {

using jscale::CsvWriter;
using jscale::TextTable;

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"alpha", "1"});
    t.row({"b", "22"});
    const std::string s = t.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("22"), std::string::npos);
    // Header underline present.
    EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(TextTable, ColumnsAligned)
{
    TextTable t;
    t.header({"k", "v"});
    t.row({"aaa", "1"});
    t.row({"b", "100"});
    std::istringstream lines(t.str());
    std::string header;
    std::string underline;
    std::string r1;
    std::string r2;
    std::getline(lines, header);
    std::getline(lines, underline);
    std::getline(lines, r1);
    std::getline(lines, r2);
    EXPECT_EQ(r1.size(), r2.size());
    EXPECT_EQ(header.size(), r1.size());
}

TEST(TextTable, RowWidthMismatchPanics)
{
    TextTable t;
    t.header({"a", "b"});
    EXPECT_DEATH(t.row({"only-one"}), "row width");
}

TEST(TextTable, EmptyTablePrintsNothing)
{
    TextTable t;
    EXPECT_EQ(t.str(), "");
}

TEST(TextTable, RowsCounted)
{
    TextTable t;
    t.header({"a"});
    EXPECT_EQ(t.rows(), 0u);
    t.row({"x"});
    t.row({"y"});
    EXPECT_EQ(t.rows(), 2u);
}

TEST(CsvWriter, PlainCells)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.row({"a", "b", "c"});
    EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(CsvWriter, QuotesSpecials)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.row({"a,b", "say \"hi\"", "line\nbreak"});
    EXPECT_EQ(os.str(), "\"a,b\",\"say \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(CsvWriter, RowOfMixedTypes)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.rowOf("x", 42, std::string("y"));
    EXPECT_EQ(os.str(), "x,42,y\n");
}

TEST(Units, FormatTicksScales)
{
    using namespace jscale;
    EXPECT_EQ(formatTicks(500), "500.00 ns");
    EXPECT_EQ(formatTicks(1500), "1.50 us");
    EXPECT_EQ(formatTicks(2 * units::MS), "2.00 ms");
    EXPECT_EQ(formatTicks(3 * units::SEC), "3.00 s");
}

TEST(Units, FormatBytesScales)
{
    using namespace jscale;
    EXPECT_EQ(formatBytes(512), "512.00 B");
    EXPECT_EQ(formatBytes(2048), "2.00 KiB");
    EXPECT_EQ(formatBytes(3 * units::MiB), "3.00 MiB");
    EXPECT_EQ(formatBytes(5 * units::GiB), "5.00 GiB");
}

TEST(Units, FormatPercent)
{
    EXPECT_EQ(jscale::formatPercent(0.423), "42.3%");
    EXPECT_EQ(jscale::formatPercent(0.0), "0.0%");
    EXPECT_EQ(jscale::formatPercent(1.0), "100.0%");
}

TEST(Units, FormatFixed)
{
    EXPECT_EQ(jscale::formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(jscale::formatFixed(2.0, 0), "2");
}

TEST(Logging, LevelsFilterMessages)
{
    using namespace jscale;
    std::ostringstream captured;
    std::ostream *prev = setLogStream(&captured);
    const LogLevel prev_level = logLevel();

    setLogLevel(LogLevel::Warn);
    inform("should not appear");
    warn("should appear");
    EXPECT_EQ(captured.str().find("should not appear"),
              std::string::npos);
    EXPECT_NE(captured.str().find("should appear"), std::string::npos);

    setLogLevel(LogLevel::Inform);
    inform("now visible");
    EXPECT_NE(captured.str().find("now visible"), std::string::npos);

    setLogLevel(prev_level);
    setLogStream(prev);
}

TEST(Logging, AssertPassesOnTrue)
{
    jscale_assert(1 + 1 == 2, "math works");
    SUCCEED();
}

TEST(Logging, AssertPanicsOnFalse)
{
    EXPECT_DEATH(jscale_assert(false, "boom ", 42), "boom 42");
}

TEST(Logging, FatalExitsWithCode1)
{
    EXPECT_EXIT(jscale_fatal("bad config"),
                ::testing::ExitedWithCode(1), "bad config");
}

} // namespace
