/**
 * @file
 * Unit tests for scheduling policies (group assignment and phase
 * arithmetic; the dispatch interaction is covered in the scheduler
 * tests).
 */

#include <gtest/gtest.h>

#include "os/policy.hh"

namespace {

using namespace jscale;
using os::BiasedPolicy;
using os::DefaultPolicy;
using os::OsThread;
using os::ThreadKind;

/** Minimal client so OsThread records can exist. */
struct NullClient : os::SchedClient
{
    Ticks planBurst(Ticks, Ticks) override { return 1; }
    os::BurstOutcome
    finishBurst(Ticks, Ticks) override
    {
        return os::BurstOutcome::Finished;
    }
};

TEST(DefaultPolicy, EverythingEligible)
{
    DefaultPolicy p;
    NullClient c;
    OsThread t(0, &c, ThreadKind::Mutator, 0);
    EXPECT_TRUE(p.eligible(t, 0));
    EXPECT_TRUE(p.eligible(t, 123456789));
}

TEST(BiasedPolicy, RoundRobinGroupAssignment)
{
    BiasedPolicy p(3, 1000);
    NullClient c;
    std::vector<std::unique_ptr<OsThread>> threads;
    for (std::uint32_t i = 0; i < 7; ++i) {
        threads.push_back(
            std::make_unique<OsThread>(i, &c, ThreadKind::Mutator, 0));
        p.onRegister(*threads.back());
    }
    EXPECT_EQ(p.groupOf(0), 0u);
    EXPECT_EQ(p.groupOf(1), 1u);
    EXPECT_EQ(p.groupOf(2), 2u);
    EXPECT_EQ(p.groupOf(3), 0u);
    EXPECT_EQ(p.groupOf(6), 0u);
}

TEST(BiasedPolicy, ActiveGroupRotatesByQuantum)
{
    BiasedPolicy p(4, 1000);
    EXPECT_EQ(p.activeGroup(0), 0u);
    EXPECT_EQ(p.activeGroup(999), 0u);
    EXPECT_EQ(p.activeGroup(1000), 1u);
    EXPECT_EQ(p.activeGroup(3999), 3u);
    EXPECT_EQ(p.activeGroup(4000), 0u);
}

TEST(BiasedPolicy, OnlyActiveGroupMutatorsEligible)
{
    BiasedPolicy p(2, 1000);
    NullClient c;
    OsThread t0(0, &c, ThreadKind::Mutator, 0);
    OsThread t1(1, &c, ThreadKind::Mutator, 0);
    p.onRegister(t0);
    p.onRegister(t1);
    EXPECT_TRUE(p.eligible(t0, 0));
    EXPECT_FALSE(p.eligible(t1, 0));
    EXPECT_FALSE(p.eligible(t0, 1500));
    EXPECT_TRUE(p.eligible(t1, 1500));
}

TEST(BiasedPolicy, HelpersAndDaemonsAlwaysEligible)
{
    BiasedPolicy p(2, 1000);
    NullClient c;
    OsThread helper(0, &c, ThreadKind::Helper, 0);
    OsThread daemon(1, &c, ThreadKind::Daemon, 0);
    p.onRegister(helper);
    p.onRegister(daemon);
    for (Ticks t : {0ULL, 500ULL, 1500ULL, 9999ULL}) {
        EXPECT_TRUE(p.eligible(helper, t));
        EXPECT_TRUE(p.eligible(daemon, t));
    }
}

TEST(BiasedPolicy, UnregisteredMutatorIsEligible)
{
    BiasedPolicy p(2, 1000);
    NullClient c;
    OsThread t(42, &c, ThreadKind::Mutator, 0);
    EXPECT_TRUE(p.eligible(t, 0));
}

TEST(BiasedPolicy, InvalidParamsDie)
{
    EXPECT_DEATH(BiasedPolicy(0, 1000), "at least one group");
    EXPECT_DEATH(BiasedPolicy(2, 0), "quantum");
}

TEST(BiasedPolicy, GroupOfUnknownThreadDies)
{
    BiasedPolicy p(2, 1000);
    EXPECT_DEATH(p.groupOf(99), "no bias group");
}

} // namespace
