/**
 * @file
 * Admission-policy tests: the policy machines in isolation (FIFO
 * order, the barging cursor's starvation bound, Malthusian culling and
 * rotation, the LCR capacity cap) and the policies driven through full
 * VM runs (stats accounting, listener events, coherence penalty,
 * determinism).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "jvm/locks/monitor.hh"
#include "jvm/locks/policy.hh"
#include "test_apps.hh"

namespace {

using namespace jscale;
using test::TinyApp;
using test::TinyAppParams;
using test::VmHarness;

/** Inert waiter for driving a policy directly. */
struct DummyWaiter : jvm::MonitorWaiter
{
    explicit DummyWaiter(jvm::MutatorIndex idx) : idx(idx) {}

    void monitorGranted(jvm::MonitorId) override {}
    void channelGranted(jvm::ChannelId) override {}
    os::OsThread *osThread() const override { return nullptr; }
    jvm::MutatorIndex mutatorIndex() const override { return idx; }

    jvm::MutatorIndex idx;
};

/** Records passivation/reactivation callbacks in firing order. */
struct EventLog : jvm::AdmissionPolicy::Events
{
    std::vector<std::pair<char, jvm::MutatorIndex>> events;

    void
    waiterPassivated(jvm::MonitorWaiter *w, Ticks) override
    {
        events.emplace_back('p', w->mutatorIndex());
    }

    void
    waiterReactivated(jvm::MonitorWaiter *w, Ticks) override
    {
        events.emplace_back('r', w->mutatorIndex());
    }
};

TEST(AdmissionPolicy, NamesRoundTripAndRejectJunk)
{
    for (const jvm::LockPolicy p : jvm::kAllLockPolicies) {
        jvm::LockPolicy parsed;
        ASSERT_TRUE(jvm::parseLockPolicy(jvm::lockPolicyName(p), parsed));
        EXPECT_EQ(parsed, p);
    }
    jvm::LockPolicy parsed;
    EXPECT_FALSE(jvm::parseLockPolicy("anarchic", parsed));

    jvm::LockPolicyConfig cfg;
    cfg.policy = jvm::LockPolicy::Lcr;
    const std::string desc = jvm::describeLockPolicyConfig(cfg);
    EXPECT_NE(desc.find("policy=lcr"), std::string::npos);
    EXPECT_NE(desc.find("max=8"), std::string::npos);
}

TEST(AdmissionPolicy, FifoGrantsInArrivalOrder)
{
    jvm::LockPolicyConfig cfg;
    auto policy = jvm::makeAdmissionPolicy(cfg, nullptr);
    std::vector<DummyWaiter> w;
    w.reserve(4);
    for (jvm::MutatorIndex i = 0; i < 4; ++i)
        w.emplace_back(i);
    for (auto &x : w)
        policy->enqueue(&x, 10 * x.idx);
    for (jvm::MutatorIndex i = 0; i < 4; ++i) {
        const auto g = policy->selectNext(100);
        EXPECT_EQ(g.waiter->mutatorIndex(), i);
        EXPECT_EQ(g.since, 10 * i);
        EXPECT_FALSE(g.bypassed_head);
    }
    EXPECT_TRUE(policy->empty());
}

TEST(AdmissionPolicy, BargingCursorRotatesAndBoundsHeadMisses)
{
    jvm::LockPolicyConfig cfg;
    cfg.policy = jvm::LockPolicy::Barging;
    cfg.barge_window = 4;
    auto policy = jvm::makeAdmissionPolicy(cfg, nullptr);
    std::vector<DummyWaiter> w;
    w.reserve(8);
    for (jvm::MutatorIndex i = 0; i < 8; ++i)
        w.emplace_back(i);
    for (auto &x : w)
        policy->enqueue(&x, 0);

    // Queue 0..7, window 4, cursor walking 0,1,2,3,0: the grants land
    // on 0, 2, 4, 6, then back on the (new) head 1.
    const jvm::MutatorIndex expect[] = {0, 2, 4, 6, 1};
    const bool bypassed[] = {false, true, true, true, false};
    for (std::size_t i = 0; i < 5; ++i) {
        const auto g = policy->selectNext(0);
        EXPECT_EQ(g.waiter->mutatorIndex(), expect[i]) << i;
        EXPECT_EQ(g.bypassed_head, bypassed[i]) << i;
    }
    // The head can never miss more than window-1 consecutive grants:
    // the cursor passes position 0 every 4th handoff by construction.
}

TEST(AdmissionPolicy, BargingClipsCursorToShallowQueues)
{
    jvm::LockPolicyConfig cfg;
    cfg.policy = jvm::LockPolicy::Barging;
    cfg.barge_window = 4;
    auto policy = jvm::makeAdmissionPolicy(cfg, nullptr);
    DummyWaiter a(0);
    DummyWaiter b(1);
    policy->enqueue(&a, 0);
    EXPECT_EQ(policy->selectNext(0).waiter, &a); // depth 1: clipped
    policy->enqueue(&a, 0);
    policy->enqueue(&b, 0);
    // cursor is now 1: grants position min(1, depth-1) = 1.
    const auto g = policy->selectNext(0);
    EXPECT_EQ(g.waiter, &b);
    EXPECT_TRUE(g.bypassed_head);
    EXPECT_EQ(policy->selectNext(0).waiter, &a);
    EXPECT_TRUE(policy->empty());
}

TEST(AdmissionPolicy, MalthusianCullsToTargetAndRotates)
{
    jvm::LockPolicyConfig cfg;
    cfg.policy = jvm::LockPolicy::Malthusian;
    cfg.active_target = 1;
    cfg.rotation_period = 3;
    EventLog log;
    auto policy = jvm::makeAdmissionPolicy(cfg, &log);
    std::vector<DummyWaiter> w;
    w.reserve(8);
    for (jvm::MutatorIndex i = 0; i < 8; ++i)
        w.emplace_back(i);

    for (jvm::MutatorIndex i = 0; i < 5; ++i)
        policy->enqueue(&w[i], 0);
    // Handoff 1: culls 4,3,2,1 from the tail, grants 0.
    auto g = policy->selectNext(100);
    EXPECT_EQ(g.waiter->mutatorIndex(), 0u);
    EXPECT_EQ(policy->passiveDepth(), 4u);
    ASSERT_EQ(log.events.size(), 4u);
    EXPECT_EQ(log.events[0], std::make_pair('p', jvm::MutatorIndex(4)));
    EXPECT_EQ(log.events[3], std::make_pair('p', jvm::MutatorIndex(1)));

    policy->enqueue(&w[5], 0);
    EXPECT_EQ(policy->selectNext(200).waiter->mutatorIndex(), 5u);

    // Handoff 3 is a rotation: passive head (4) re-enters at the
    // active *front* and is granted immediately.
    policy->enqueue(&w[6], 0);
    log.events.clear();
    g = policy->selectNext(300);
    EXPECT_EQ(g.waiter->mutatorIndex(), 4u);
    EXPECT_TRUE(g.bypassed_head); // waiter 1 (older) is still passive
    ASSERT_GE(log.events.size(), 1u);
    EXPECT_EQ(log.events[0], std::make_pair('r', jvm::MutatorIndex(4)));

    // Whenever the active set drains, the passive list refills it even
    // off-period.
    while (!policy->empty())
        policy->selectNext(400);
    EXPECT_EQ(policy->passiveDepth(), 0u);
}

TEST(AdmissionPolicy, LcrCapTracksMeasuredThinkHoldRatio)
{
    jvm::LockPolicyConfig cfg;
    cfg.policy = jvm::LockPolicy::Lcr;
    cfg.lcr_min_active = 1;
    cfg.lcr_max_active = 8;
    cfg.rotation_period = 0; // isolate the capacity cap
    EventLog log;
    auto policy = jvm::makeAdmissionPolicy(cfg, &log);
    std::vector<DummyWaiter> w;
    w.reserve(8);
    for (jvm::MutatorIndex i = 0; i < 8; ++i)
        w.emplace_back(i);

    // Measure: waiter 0 holds for 10 ticks, thinks for 30 ->
    // capacity = 1 + 30/10 = 4.
    policy->enqueue(&w[0], 0);
    EXPECT_EQ(policy->selectNext(0).waiter, &w[0]);
    policy->noteRelease(&w[0], 100, /*hold=*/10);
    policy->enqueue(&w[0], 130); // think = 30

    for (jvm::MutatorIndex i = 1; i < 6; ++i)
        policy->enqueue(&w[i], 130);
    // Six active waiters against a cap of 4: two are passivated.
    EXPECT_EQ(policy->selectNext(140).waiter, &w[0]);
    EXPECT_EQ(policy->passiveDepth(), 2u);
    ASSERT_EQ(log.events.size(), 2u);
    EXPECT_EQ(log.events[0], std::make_pair('p', jvm::MutatorIndex(5)));
    EXPECT_EQ(log.events[1], std::make_pair('p', jvm::MutatorIndex(4)));
}

TEST(AdmissionPolicy, CancelRemovesFromActiveAndPassiveLists)
{
    jvm::LockPolicyConfig cfg;
    cfg.policy = jvm::LockPolicy::Malthusian;
    cfg.active_target = 1;
    auto policy = jvm::makeAdmissionPolicy(cfg, nullptr);
    std::vector<DummyWaiter> w;
    w.reserve(4);
    for (jvm::MutatorIndex i = 0; i < 4; ++i)
        w.emplace_back(i);
    for (auto &x : w)
        policy->enqueue(&x, 0);
    policy->selectNext(0); // passivates 3, 2, 1; grants 0
    EXPECT_EQ(policy->passiveDepth(), 3u);

    EXPECT_TRUE(policy->cancel(&w[2]));  // passive
    EXPECT_EQ(policy->passiveDepth(), 2u);
    EXPECT_FALSE(policy->cancel(&w[0])); // already granted
    policy->enqueue(&w[0], 0);
    EXPECT_TRUE(policy->cancel(&w[0]));  // active
    EXPECT_EQ(policy->depth(), 2u);
}

/** Counts passivation/reactivation events on the listener chain. */
struct PolicyProbe : jvm::RuntimeListener
{
    std::uint64_t passivated = 0;
    std::uint64_t reactivated = 0;

    void
    onMonitorWaiterPassivated(jvm::MutatorIndex, jvm::MonitorId,
                              Ticks) override
    {
        ++passivated;
    }

    void
    onMonitorWaiterReactivated(jvm::MutatorIndex, jvm::MonitorId,
                               Ticks) override
    {
        ++reactivated;
    }
};

jvm::VmConfig
policyVmConfig(jvm::LockPolicy p, Ticks base = 0, Ticks coherence = 0)
{
    jvm::VmConfig cfg = VmHarness::defaultVmConfig();
    cfg.locks.policy = p;
    cfg.locks.active_target = 2;
    cfg.locks.rotation_period = 8;
    cfg.locks.handoff_base = base;
    cfg.locks.coherence_cost = coherence;
    return cfg;
}

TinyAppParams
hotLockParams()
{
    TinyAppParams p;
    p.tasks_per_thread = 40;
    p.compute_per_task = 1 * units::US;
    p.use_shared_lock = 5000; // hot: guaranteed contention
    return p;
}

TEST(LockPolicy, HotLockRunCompletesUnderEveryPolicy)
{
    for (const jvm::LockPolicy p : jvm::kAllLockPolicies) {
        VmHarness h(8, policyVmConfig(p));
        PolicyProbe probe;
        h.vm.listeners().add(&probe);
        TinyApp app(hotLockParams());
        const jvm::RunResult r = h.vm.run(app, 8);
        EXPECT_FALSE(r.failed()) << jvm::lockPolicyName(p);
        EXPECT_EQ(r.locks.acquisitions, 8u * 40u)
            << jvm::lockPolicyName(p);
        EXPECT_GT(r.locks.handoffs, 0u) << jvm::lockPolicyName(p);
        // The listener stream mirrors the totals exactly (the oracle
        // depends on this).
        EXPECT_EQ(probe.passivated, r.locks.waiters_passivated)
            << jvm::lockPolicyName(p);
        EXPECT_EQ(probe.reactivated, r.locks.waiters_reactivated)
            << jvm::lockPolicyName(p);
        switch (p) {
          case jvm::LockPolicy::Fifo:
            EXPECT_EQ(r.locks.barged_grants, 0u);
            EXPECT_EQ(r.locks.waiters_passivated, 0u);
            break;
          case jvm::LockPolicy::Barging:
            EXPECT_GT(r.locks.barged_grants, 0u);
            EXPECT_EQ(r.locks.waiters_passivated, 0u);
            break;
          case jvm::LockPolicy::Malthusian:
          case jvm::LockPolicy::Lcr:
            EXPECT_GT(r.locks.waiters_passivated, 0u)
                << jvm::lockPolicyName(p);
            EXPECT_GT(r.locks.waiters_reactivated, 0u)
                << jvm::lockPolicyName(p);
            break;
        }
    }
}

TEST(LockPolicy, CoherencePenaltyChargesWideCirculation)
{
    // Zero-cost config: byte-compatible with the pre-policy monitor.
    VmHarness base(8, policyVmConfig(jvm::LockPolicy::Fifo));
    TinyApp app1(hotLockParams());
    const jvm::RunResult r0 = base.vm.run(app1, 8);
    EXPECT_EQ(r0.locks.coherence_penalty, 0u);

    // Costed config: eight threads circulate over one hot lock, so
    // handoffs see distinct recent owners and the penalty accumulates
    // into a longer run.
    VmHarness costed(8, policyVmConfig(jvm::LockPolicy::Fifo, 250, 500));
    TinyApp app2(hotLockParams());
    const jvm::RunResult r1 = costed.vm.run(app2, 8);
    EXPECT_GT(r1.locks.coherence_penalty, 0u);
    EXPECT_GT(r1.locks.circulation_sum, r1.locks.handoffs)
        << "expected >1 distinct recent owner per handoff on average";
    EXPECT_GT(r1.wall_time, r0.wall_time);
}

TEST(LockPolicy, RunsAreDeterministicPerPolicy)
{
    for (const jvm::LockPolicy p : jvm::kAllLockPolicies) {
        auto once = [&] {
            VmHarness h(8, policyVmConfig(p, 250, 500));
            TinyApp app(hotLockParams());
            return h.vm.run(app, 8);
        };
        const jvm::RunResult a = once();
        const jvm::RunResult b = once();
        EXPECT_EQ(a.wall_time, b.wall_time) << jvm::lockPolicyName(p);
        EXPECT_EQ(a.locks.handoffs, b.locks.handoffs);
        EXPECT_EQ(a.locks.barged_grants, b.locks.barged_grants);
        EXPECT_EQ(a.locks.waiters_passivated, b.locks.waiters_passivated);
        EXPECT_EQ(a.locks.coherence_penalty, b.locks.coherence_penalty);
    }
}

TEST(LockPolicy, CullingNarrowsCirculationUnderContention)
{
    // The collapse mechanism in miniature: FIFO circulates all eight
    // threads over the hot lock; Malthusian restricts the active set,
    // so its average circulation width is strictly narrower.
    auto circulation = [](jvm::LockPolicy p) {
        VmHarness h(8, policyVmConfig(p, 250, 500));
        TinyApp app(hotLockParams());
        const jvm::RunResult r = h.vm.run(app, 8);
        return r.locks.handoffs == 0
                   ? 0.0
                   : static_cast<double>(r.locks.circulation_sum) /
                         static_cast<double>(r.locks.handoffs);
    };
    const double fifo = circulation(jvm::LockPolicy::Fifo);
    const double malthusian = circulation(jvm::LockPolicy::Malthusian);
    EXPECT_GT(fifo, 0.0);
    EXPECT_LT(malthusian, fifo);
}

} // namespace
