/**
 * @file
 * Oracle-suite tests: a clean run produces zero violations while
 * performing real checks, an armed suite is a pure observer (identical
 * simulated behaviour), attach() self-configures its gates from the
 * scheduler configuration, and each seeded event-stream bug (sabotage
 * mode) is caught with a diagnosis naming the offender.
 */

#include <gtest/gtest.h>

#include <string>

#include "base/error.hh"
#include "base/units.hh"
#include "check/fuzz.hh"
#include "check/oracle.hh"
#include "check/random_app.hh"
#include "test_apps.hh"

namespace {

using namespace jscale;

TEST(Oracle, ViolationFormatsWithOracleNameAndTime)
{
    check::InvariantViolation v;
    v.oracle = "heap-conservation";
    v.message = "object 7 allocated twice";
    v.at = 3 * units::MS;
    const std::string s = v.format();
    EXPECT_NE(s.find("heap-conservation:"), std::string::npos) << s;
    EXPECT_NE(s.find("object 7 allocated twice"), std::string::npos) << s;
    EXPECT_NE(s.find("3.00 ms"), std::string::npos) << s;
}

TEST(Oracle, OracleErrorIsAnAbortErrorCarryingTheViolation)
{
    check::InvariantViolation v;
    v.oracle = "monitor-exclusion";
    v.message = "two holders";
    const check::OracleError e(v);
    // AbortError is what the experiment harness isolates per run, so an
    // oracle hit gets an error artifact exactly like a watchdog timeout.
    const AbortError &base = e;
    EXPECT_NE(std::string(base.what()).find("invariant violation"),
              std::string::npos);
    EXPECT_EQ(e.violation.oracle, "monitor-exclusion");
}

TEST(Oracle, CleanRunPerformsChecksAndReportsNoViolations)
{
    jvm::VmConfig cfg = test::VmHarness::defaultVmConfig();
    cfg.heap.capacity = 3 * units::MiB; // small: force collections
    test::VmHarness h(8, cfg, /*seed=*/42);

    check::OracleSuite suite;
    suite.attach(h.vm);
    check::RandomApp app(42, /*monitors=*/4, /*tasks=*/120);
    const jvm::RunResult r = h.vm.run(app, 8);
    suite.finishRun(h.sim.now());

    EXPECT_TRUE(suite.violations().empty());
    EXPECT_EQ(suite.violationCount(), 0u);
    EXPECT_GT(suite.checksPerformed(), 1000u);
    EXPECT_EQ(r.total_tasks, 8u * 120u);

    // Detach is idempotent (the destructor detaches again).
    suite.detach();
    suite.detach();
}

TEST(Oracle, ArmedSuiteIsAPureObserver)
{
    const auto run = [](bool armed) {
        jvm::VmConfig cfg = test::VmHarness::defaultVmConfig();
        cfg.heap.capacity = 3 * units::MiB;
        test::VmHarness h(6, cfg, /*seed=*/7);
        check::OracleSuite suite;
        if (armed)
            suite.attach(h.vm);
        check::RandomApp app(7, 3, 80);
        const jvm::RunResult r = h.vm.run(app, 6);
        if (armed)
            suite.finishRun(h.sim.now());
        return r;
    };
    const jvm::RunResult plain = run(false);
    const jvm::RunResult checked = run(true);
    EXPECT_EQ(plain.wall_time, checked.wall_time);
    EXPECT_EQ(plain.sim_events, checked.sim_events);
    EXPECT_EQ(plain.gc.minor_count, checked.gc.minor_count);
    EXPECT_EQ(plain.locks.contentions, checked.locks.contentions);
    EXPECT_EQ(plain.heap.bytes_allocated, checked.heap.bytes_allocated);
}

TEST(Oracle, AttachDisarmsStarvationCheckWhenStealingIsOff)
{
    // Without work stealing a ready thread can legitimately wait
    // unboundedly for its home core, so attach() must disarm the
    // starvation-freedom oracle instead of producing false alarms.
    sim::Simulation sim(1);
    machine::Machine mach(machine::Machine::testMachine_2p8c());
    mach.enableCores(4);
    os::SchedulerConfig scfg;
    scfg.stealing = false;
    os::Scheduler sched(sim, mach, scfg);
    jvm::JavaVm vm(sim, mach, sched, test::VmHarness::defaultVmConfig());

    check::OracleSuite suite;
    EXPECT_TRUE(suite.config().starvation);
    suite.attach(vm);
    EXPECT_FALSE(suite.config().starvation);
}

TEST(Oracle, SabotagedEventStreamsAreCaughtAndDiagnosed)
{
    const struct
    {
        check::Sabotage sabotage;
        const char *oracle;
        const char *needle;
    } kinds[] = {
        {check::Sabotage::DupAlloc, "heap-conservation",
         "allocated twice"},
        {check::Sabotage::PhantomDeath, "heap-conservation", "object"},
        {check::Sabotage::DoubleRelease, "monitor-exclusion",
         "released"},
    };
    for (const auto &k : kinds) {
        check::FuzzCase c = check::caseForSeed(42);
        c.sabotage = k.sabotage;
        const check::FuzzOutcome out = check::runFuzzCase(c);
        ASSERT_FALSE(out.clean()) << check::sabotageName(k.sabotage);
        ASSERT_FALSE(out.violations.empty())
            << check::sabotageName(k.sabotage) << ": " << out.run_error;
        EXPECT_EQ(out.violations[0].oracle, k.oracle)
            << out.violations[0].format();
        EXPECT_NE(out.violations[0].message.find(k.needle),
                  std::string::npos)
            << out.violations[0].format();
    }
}

TEST(Oracle, UnsabotagedCaseIsCleanAcrossConfigurationSpace)
{
    // TLABs, faults and the governor all change the event stream the
    // oracles observe; none of them may trip a false alarm.
    for (const std::uint64_t seed : {1ULL, 9ULL, 23ULL, 77ULL}) {
        const check::FuzzOutcome out =
            check::runFuzzCase(check::caseForSeed(seed));
        EXPECT_TRUE(out.clean()) << "seed " << seed << ": "
                                 << out.diagnosis();
        EXPECT_GT(out.checks, 0u);
        EXPECT_GT(out.sim_time, 0u);
    }
}

TEST(Oracle, EveryAdmissionPolicyRunsOracleClean)
{
    // Barging reorders grants within its window, the culling policies
    // passivate and rotate waiters — the per-policy handoff models
    // must follow along without false alarms, including on a single
    // heavily contended monitor.
    for (const jvm::LockPolicy p : jvm::kAllLockPolicies) {
        for (const std::uint64_t seed : {5ULL, 42ULL, 91ULL}) {
            check::FuzzCase c = check::caseForSeed(seed);
            c.threads = 6;
            c.monitors = 1;
            c.policy = p;
            const check::FuzzOutcome out = check::runFuzzCase(c);
            EXPECT_TRUE(out.clean())
                << jvm::lockPolicyName(p) << " seed " << seed << ": "
                << out.diagnosis();
        }
    }
}

} // namespace
