/**
 * @file
 * Tests for the DTrace-style lock profiler: agreement with the
 * runtime's own monitor counters, per-thread/per-monitor breakdowns and
 * block-time accounting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "lockprof/lockprof.hh"
#include "test_apps.hh"

namespace {

using namespace jscale;
using lockprof::LockProfiler;
using test::TinyApp;
using test::TinyAppParams;
using test::VmHarness;

jvm::RunResult
profiledRun(LockProfiler &profiler, std::uint32_t threads,
            std::int32_t lock_cs)
{
    VmHarness h(8);
    h.vm.listeners().add(&profiler);
    TinyAppParams p;
    p.tasks_per_thread = 40;
    p.compute_per_task = 3 * units::US;
    p.use_shared_lock = lock_cs;
    TinyApp app(p);
    return h.vm.run(app, threads);
}

TEST(LockProfiler, MatchesRuntimeCounters)
{
    LockProfiler prof;
    const jvm::RunResult r = profiledRun(prof, 8, 3000);
    EXPECT_EQ(prof.totals().acquisitions, r.locks.acquisitions);
    EXPECT_EQ(prof.totals().contentions, r.locks.contentions);
    EXPECT_EQ(prof.totals().total_block_time, r.locks.block_time);
    EXPECT_EQ(prof.totals().releases, r.locks.acquisitions);
}

TEST(LockProfiler, PerThreadSumsToTotals)
{
    LockProfiler prof;
    profiledRun(prof, 6, 2000);
    std::uint64_t acq = 0;
    std::uint64_t cont = 0;
    for (const auto &[tid, c] : prof.perThread()) {
        acq += c.acquisitions;
        cont += c.contentions;
    }
    EXPECT_EQ(acq, prof.totals().acquisitions);
    EXPECT_EQ(cont, prof.totals().contentions);
}

TEST(LockProfiler, PerMonitorSumsToTotals)
{
    LockProfiler prof;
    profiledRun(prof, 6, 2000);
    std::uint64_t acq = 0;
    Ticks block = 0;
    for (const auto &[mid, c] : prof.perMonitor()) {
        acq += c.acquisitions;
        block += c.total_block_time;
    }
    EXPECT_EQ(acq, prof.totals().acquisitions);
    EXPECT_EQ(block, prof.totals().total_block_time);
}

TEST(LockProfiler, ContendedAcquisitionsMatchContentions)
{
    // Every contention instance eventually becomes a contended
    // acquisition (FIFO handoff, no timeouts).
    LockProfiler prof;
    profiledRun(prof, 8, 4000);
    EXPECT_EQ(prof.totals().contended_acquisitions,
              prof.totals().contentions);
}

TEST(LockProfiler, BlockDurationsPositiveWhenContended)
{
    LockProfiler prof;
    profiledRun(prof, 8, 4000);
    ASSERT_GT(prof.blockDurations().count(), 0u);
    EXPECT_GT(prof.blockDurations().mean(), 0.0);
    EXPECT_GE(prof.blockDurations().min(), 0.0);
}

TEST(LockProfiler, QueueDepthTracked)
{
    LockProfiler prof;
    profiledRun(prof, 8, 6000);
    std::uint32_t max_depth = 0;
    for (const auto &[mid, c] : prof.perMonitor())
        max_depth = std::max(max_depth, c.max_blocked);
    EXPECT_GE(max_depth, 1u);
    EXPECT_LE(max_depth, 7u); // at most threads-1 can queue
}

TEST(LockProfiler, ReportRendersAllMonitors)
{
    LockProfiler prof;
    profiledRun(prof, 4, 2000);
    std::ostringstream os;
    prof.printReport(os);
    EXPECT_NE(os.str().find("monitor-0"), std::string::npos);
    EXPECT_NE(os.str().find("TOTAL"), std::string::npos);
}

TEST(LockProfiler, ResetClearsState)
{
    LockProfiler prof;
    profiledRun(prof, 4, 2000);
    ASSERT_GT(prof.totals().acquisitions, 0u);
    prof.reset();
    EXPECT_EQ(prof.totals().acquisitions, 0u);
    EXPECT_TRUE(prof.perMonitor().empty());
}

} // namespace
