/**
 * @file
 * Tests for the ExperimentRunner: methodology fidelity (threads ==
 * cores, 3x min-heap sizing), caching, determinism and configuration.
 */

#include <gtest/gtest.h>

#include "core/analyze.hh"
#include "core/experiment.hh"
#include "workload/task_queue_app.hh"

namespace {

using namespace jscale;
using core::ExperimentConfig;
using core::ExperimentRunner;

ExperimentConfig
fastConfig()
{
    ExperimentConfig cfg;
    cfg.workload_scale = 0.05;
    return cfg;
}

TEST(ExperimentRunner, PaperThreadCountsClippedToMachine)
{
    ExperimentConfig cfg = fastConfig();
    ExperimentRunner full(cfg);
    EXPECT_EQ(full.paperThreadCounts(),
              (std::vector<std::uint32_t>{1, 2, 4, 8, 16, 24, 32, 48}));

    cfg.machine = machine::Machine::testMachine_2p8c();
    ExperimentRunner small(cfg);
    EXPECT_EQ(small.paperThreadCounts(),
              (std::vector<std::uint32_t>{1, 2, 4, 8}));
}

TEST(ExperimentRunner, ThreadsEqualEnabledCores)
{
    ExperimentRunner runner(fastConfig());
    const auto r = runner.runApp("sunflow", 8);
    EXPECT_EQ(r.threads, 8u);
    EXPECT_EQ(r.cores, 8u);
}

TEST(ExperimentRunner, MinHeapPositiveAndCached)
{
    ExperimentRunner runner(fastConfig());
    const Bytes m1 = runner.minHeapRequirement("xalan");
    const Bytes m2 = runner.minHeapRequirement("xalan");
    EXPECT_GT(m1, 0u);
    EXPECT_EQ(m1, m2);
}

TEST(ExperimentRunner, HeapIsFactorTimesMinimum)
{
    ExperimentConfig cfg = fastConfig();
    cfg.heap_factor = 3.0;
    ExperimentRunner runner(cfg);
    const Bytes min_heap = runner.minHeapRequirement("lusearch");
    const auto r = runner.runApp("lusearch", 4);
    EXPECT_NEAR(static_cast<double>(r.heap_capacity),
                3.0 * static_cast<double>(min_heap),
                static_cast<double>(min_heap) * 0.01);
}

TEST(ExperimentRunner, HeapOverrideRespected)
{
    ExperimentConfig cfg = fastConfig();
    cfg.heap_override = 16 * units::MiB;
    ExperimentRunner runner(cfg);
    const auto r = runner.runApp("sunflow", 2);
    EXPECT_EQ(r.heap_capacity, 16 * units::MiB);
}

TEST(ExperimentRunner, DeterministicAcrossRuns)
{
    ExperimentRunner a(fastConfig());
    ExperimentRunner b(fastConfig());
    const auto ra = a.runApp("xalan", 8);
    const auto rb = b.runApp("xalan", 8);
    EXPECT_EQ(ra.wall_time, rb.wall_time);
    EXPECT_EQ(ra.gc_time, rb.gc_time);
    EXPECT_EQ(ra.heap.objects_allocated, rb.heap.objects_allocated);
    EXPECT_EQ(ra.locks.acquisitions, rb.locks.acquisitions);
    EXPECT_EQ(ra.locks.contentions, rb.locks.contentions);
    EXPECT_EQ(ra.sim_events, rb.sim_events);
}

TEST(ExperimentRunner, SeedChangesOutcome)
{
    ExperimentConfig cfg_a = fastConfig();
    ExperimentConfig cfg_b = fastConfig();
    cfg_b.seed = 777;
    ExperimentRunner a(cfg_a);
    ExperimentRunner b(cfg_b);
    const auto ra = a.runApp("xalan", 8);
    const auto rb = b.runApp("xalan", 8);
    EXPECT_NE(ra.wall_time, rb.wall_time);
}

TEST(ExperimentRunner, SweepOrdersResultsByThreads)
{
    ExperimentRunner runner(fastConfig());
    const auto sweep = runner.sweep("sunflow", {1, 4, 8});
    ASSERT_EQ(sweep.size(), 3u);
    EXPECT_EQ(sweep[0].threads, 1u);
    EXPECT_EQ(sweep[2].threads, 8u);
}

TEST(ExperimentRunner, RunCustomUsesFactory)
{
    ExperimentRunner runner(fastConfig());
    workload::TaskQueueParams p;
    p.name = "custom-x";
    p.total_tasks = 50;
    const auto r = runner.runCustom(
        [&p] { return std::make_unique<workload::TaskQueueApp>(p); },
        "custom-x", 4);
    EXPECT_EQ(r.app_name, "custom-x");
    EXPECT_EQ(r.total_tasks, 50u);
}

TEST(ExperimentRunner, BiasedSchedulingConfigApplies)
{
    ExperimentConfig cfg = fastConfig();
    cfg.biased_scheduling = true;
    cfg.bias_groups = 2;
    ExperimentRunner runner(cfg);
    const auto r = runner.runApp("xalan", 8);
    EXPECT_GT(r.wall_time, 0u);
    EXPECT_EQ(r.total_tasks,
              ExperimentRunner(fastConfig())
                  .runApp("xalan", 8)
                  .total_tasks);
}

TEST(ExperimentRunner, ReplicatedRunsVaryBySeedOnly)
{
    ExperimentRunner runner(fastConfig());
    const auto reps = runner.runReplicated("sunflow", 4, 3);
    ASSERT_EQ(reps.size(), 3u);
    // Same work everywhere, different stochastic outcomes.
    EXPECT_EQ(reps[0].total_tasks, reps[1].total_tasks);
    EXPECT_EQ(reps[1].total_tasks, reps[2].total_tasks);
    EXPECT_NE(reps[0].wall_time, reps[1].wall_time);
    // Replication restores the campaign seed: a fresh run matches the
    // original configuration exactly.
    ExperimentRunner fresh(fastConfig());
    EXPECT_EQ(runner.runApp("sunflow", 4).wall_time,
              fresh.runApp("sunflow", 4).wall_time);
}

TEST(ExperimentRunner, ScatterPlacementRuns)
{
    ExperimentConfig cfg = fastConfig();
    cfg.placement = machine::Machine::EnablePolicy::Scatter;
    ExperimentRunner runner(cfg);
    const auto r = runner.runApp("sunflow", 4);
    EXPECT_EQ(r.cores, 4u);
    EXPECT_GT(r.wall_time, 0u);
}

TEST(Analyzer, ConfidenceInterval)
{
    using core::ScalabilityAnalyzer;
    const auto c =
        ScalabilityAnalyzer::confidence({10.0, 12.0, 11.0, 13.0, 9.0});
    EXPECT_DOUBLE_EQ(c.mean, 11.0);
    EXPECT_EQ(c.n, 5u);
    EXPECT_GT(c.ci95, 0.0);
    EXPECT_NEAR(c.stddev, 1.5811, 1e-3);

    const auto empty = ScalabilityAnalyzer::confidence({});
    EXPECT_EQ(empty.n, 0u);
    const auto single = ScalabilityAnalyzer::confidence({5.0});
    EXPECT_DOUBLE_EQ(single.mean, 5.0);
    EXPECT_DOUBLE_EQ(single.ci95, 0.0);
}

TEST(Analyzer, WallTimeConfidenceOverReplicas)
{
    ExperimentRunner runner(fastConfig());
    const auto reps = runner.runReplicated("jython", 4, 4);
    const auto c = core::ScalabilityAnalyzer::wallTimeConfidence(reps);
    EXPECT_EQ(c.n, 4u);
    EXPECT_GT(c.mean, 0.0);
    // The simulator's run-to-run spread is small relative to the mean.
    EXPECT_LT(c.ci95, 0.2 * c.mean);
}

TEST(ExperimentRunner, InvalidHeapFactorDies)
{
    ExperimentConfig cfg = fastConfig();
    cfg.heap_factor = 0.5;
    EXPECT_DEATH(ExperimentRunner runner(cfg), "heap factor");
}

} // namespace
