/**
 * @file
 * Tests for the GC support classes: the pause cost model, the adaptive
 * size policy, and the GC log writer/parser.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "jvm/gc/adaptive.hh"
#include "jvm/gc/cost_model.hh"
#include "jvm/gc/gclog.hh"
#include "test_apps.hh"

namespace {

using namespace jscale;
using jvm::AdaptiveSizeConfig;
using jvm::AdaptiveSizePolicy;
using jvm::FullWork;
using jvm::GcCostModel;
using jvm::GcCostParams;
using jvm::MinorWork;

machine::Machine &
bigMachine()
{
    static machine::Machine m(machine::Machine::amd6168_4p48c());
    m.enableCores(48);
    return m;
}

MinorWork
minorWork(Bytes copied, Bytes promoted, std::uint64_t objects)
{
    MinorWork w;
    w.copied_bytes = copied;
    w.promoted_bytes = promoted;
    w.scanned_objects = objects;
    w.scanned_bytes = copied + promoted;
    return w;
}

TEST(GcCostModel, PauseGrowsWithSurvivingBytes)
{
    GcCostModel model(GcCostParams{}, bigMachine(), 8, 8);
    const Ticks small = model.minorPause(minorWork(64 * units::KiB, 0,
                                                   1000));
    const Ticks large = model.minorPause(minorWork(4 * units::MiB, 0,
                                                   1000));
    EXPECT_GT(large, small);
}

TEST(GcCostModel, PauseGrowsWithMutatorThreads)
{
    // Root-scan work is proportional to registered mutators.
    GcCostModel few(GcCostParams{}, bigMachine(), 8, 4);
    GcCostModel many(GcCostParams{}, bigMachine(), 8, 48);
    const auto w = minorWork(256 * units::KiB, 0, 5000);
    EXPECT_GT(many.minorPause(w), few.minorPause(w));
}

TEST(GcCostModel, MoreGcThreadsShortenCopyDominatedPauses)
{
    GcCostModel one(GcCostParams{}, bigMachine(), 1, 4);
    GcCostModel many(GcCostParams{}, bigMachine(), 16, 4);
    const auto w = minorWork(8 * units::MiB, 0, 1000);
    EXPECT_LT(many.minorPause(w), one.minorPause(w));
}

TEST(GcCostModel, ParallelEfficiencyDiminishes)
{
    // Doubling workers never doubles bandwidth (alpha > 0).
    GcCostModel m8(GcCostParams{}, bigMachine(), 8, 4);
    GcCostModel m16(GcCostParams{}, bigMachine(), 16, 4);
    const double bw8 = m8.bandwidth(1.0);
    const double bw16 = m16.bandwidth(1.0);
    EXPECT_GT(bw16, bw8);
    EXPECT_LT(bw16, 2.0 * bw8);
}

TEST(GcCostModel, NumaFactorGrowsWithSockets)
{
    machine::Machine m(machine::Machine::amd6168_4p48c());
    m.enableCores(12); // one socket
    GcCostModel local(GcCostParams{}, m, 8, 4);
    EXPECT_DOUBLE_EQ(local.numaFactor(), 1.0);
    m.enableCores(48); // four sockets
    GcCostModel spread(GcCostParams{}, m, 8, 4);
    EXPECT_GT(spread.numaFactor(), 1.0);
    EXPECT_LT(spread.numaFactor(), m.config().numa_remote_factor);
    m.enableCores(48);
}

TEST(GcCostModel, FullPauseExceedsMinorForSameBytes)
{
    GcCostModel model(GcCostParams{}, bigMachine(), 8, 8);
    FullWork f;
    f.live_bytes = 1 * units::MiB;
    f.scanned_objects = 10000;
    const auto m = minorWork(1 * units::MiB, 0, 10000);
    EXPECT_GT(model.fullPause(f), model.minorPause(m));
}

TEST(GcCostModel, LocalPauseCheaperThanStwMinor)
{
    GcCostModel model(GcCostParams{}, bigMachine(), 48, 48);
    const auto w = minorWork(16 * units::KiB, 2 * units::KiB, 400);
    EXPECT_LT(model.localPause(w), model.minorPause(w));
}

TEST(AdaptiveSizePolicy, GrowsYoungWhenGcShareHigh)
{
    AdaptiveSizeConfig cfg;
    cfg.enabled = true;
    AdaptiveSizePolicy policy(cfg, 1.0 / 3.0);
    // 20% GC share >> 5% target.
    const double f = policy.decide(8 * units::MS, 2 * units::MS,
                                   1 * units::MiB, 64 * units::MiB);
    EXPECT_GT(f, 1.0 / 3.0);
    EXPECT_EQ(policy.adaptiveStats().grows, 1u);
}

TEST(AdaptiveSizePolicy, ShrinksYoungWhenGcShareLow)
{
    AdaptiveSizeConfig cfg;
    AdaptiveSizePolicy policy(cfg, 1.0 / 3.0);
    const double f = policy.decide(1000 * units::MS, 1 * units::MS,
                                   1 * units::MiB, 64 * units::MiB);
    EXPECT_LT(f, 1.0 / 3.0);
    EXPECT_EQ(policy.adaptiveStats().shrinks, 1u);
}

TEST(AdaptiveSizePolicy, RespectsBounds)
{
    AdaptiveSizeConfig cfg;
    cfg.min_young_fraction = 0.2;
    cfg.max_young_fraction = 0.5;
    AdaptiveSizePolicy policy(cfg, 0.48);
    for (int i = 0; i < 20; ++i) {
        policy.decide(1 * units::MS, 1 * units::MS, 0,
                      64 * units::MiB); // 50% share: always grow
    }
    EXPECT_LE(policy.youngFraction(), 0.5);
    AdaptiveSizePolicy shrinker(cfg, 0.22);
    for (int i = 0; i < 20; ++i) {
        shrinker.decide(1000 * units::MS, 1, 0, 64 * units::MiB);
    }
    EXPECT_GE(shrinker.youngFraction(), 0.2);
}

TEST(AdaptiveSizePolicy, OldHeadroomCapsGrowth)
{
    AdaptiveSizeConfig cfg;
    cfg.max_young_fraction = 0.8;
    AdaptiveSizePolicy policy(cfg, 1.0 / 3.0);
    // Live data fills a third of the heap: young can grow to at most
    // 1 - 1.5/3 = 0.5 regardless of GC pressure.
    double f = 1.0 / 3.0;
    for (int i = 0; i < 10; ++i) {
        f = policy.decide(1 * units::MS, 1 * units::MS,
                          64 * units::MiB / 3, 64 * units::MiB);
    }
    EXPECT_LE(f, 0.501);
}

TEST(HeapResize, ResizeYoungAdjustsCapacities)
{
    jvm::HeapConfig cfg;
    cfg.capacity = 12 * units::MiB;
    jvm::Heap heap(cfg, 1, nullptr);
    const Bytes old_eden = heap.edenCapacity();
    ASSERT_TRUE(heap.resizeYoung(0.5));
    EXPECT_GT(heap.edenCapacity(), old_eden);
    EXPECT_EQ(heap.edenCapacity() + 2 * heap.survivorCapacity() +
                  heap.oldCapacity(),
              cfg.capacity);
    EXPECT_EQ(heap.resizeCount(), 1u);
}

TEST(HeapResize, RefusesWhenOccupancyDoesNotFit)
{
    jvm::HeapConfig cfg;
    cfg.capacity = 12 * units::MiB;
    jvm::Heap heap(cfg, 1, nullptr);
    // Fill old gen via pinned allocations + full GC.
    for (int i = 0; i < 60; ++i)
        heap.allocate(0, 64 * units::KiB, jvm::kImmortalTtl, 0, 0);
    heap.collectFull(0);
    ASSERT_GT(heap.oldUsed(), 3 * units::MiB);
    // Young cannot grow to 80% if old data would not fit in 20%.
    EXPECT_FALSE(heap.resizeYoung(0.8));
}

TEST(GcLog, RoundTripsThroughParser)
{
    std::stringstream log;
    {
        // Synthesize a writer-formatted log via the parser's grammar.
        log << "[GC (Allocation Failure)  412K->67K(1024K), "
               "0.0003120 secs]\n";
        log << "not a gc line\n";
        log << "[Full GC (Allocation Failure)  897K->411K(1024K), "
               "0.0041230 secs]\n";
    }
    const auto records = jvm::parseGcLog(log);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_FALSE(records[0].full);
    EXPECT_EQ(records[0].before, 412 * units::KiB);
    EXPECT_EQ(records[0].after, 67 * units::KiB);
    EXPECT_EQ(records[0].capacity, 1024 * units::KiB);
    EXPECT_EQ(records[0].pause, 312000u);
    EXPECT_TRUE(records[1].full);

    const auto summary = jvm::summarizeGcLog(records);
    EXPECT_EQ(summary.minor_count, 1u);
    EXPECT_EQ(summary.full_count, 1u);
    EXPECT_EQ(summary.max_pause, records[1].pause);
    EXPECT_EQ(summary.total_reclaimed,
              (412 - 67 + 897 - 411) * units::KiB);
}

TEST(GcLog, WriterOutputParsesBack)
{
    // Full integration: attach a GcLogWriter to a run, parse its output.
    jvm::VmConfig cfg = test::VmHarness::defaultVmConfig();
    cfg.heap.capacity = 2 * units::MiB;
    test::VmHarness h(2, cfg);
    std::stringstream log;
    // GcLogWriter needs the heap; construct it inside the run via a
    // deferred listener wrapper.
    struct Deferred : jvm::RuntimeListener
    {
        test::VmHarness &h;
        std::stringstream &log;
        std::unique_ptr<jvm::GcLogWriter> writer;

        Deferred(test::VmHarness &h, std::stringstream &log)
            : h(h), log(log)
        {}

        void
        onGcStart(jvm::GcKind kind, std::uint64_t seq, Ticks now) override
        {
            if (!writer)
                writer = std::make_unique<jvm::GcLogWriter>(log,
                                                            h.vm.heap());
            writer->onGcStart(kind, seq, now);
        }

        void
        onGcEnd(const jvm::GcEvent &ev, Ticks now) override
        {
            writer->onGcEnd(ev, now);
        }
    };
    Deferred deferred(h, log);
    h.vm.listeners().add(&deferred);
    test::TinyAppParams p;
    p.tasks_per_thread = 200;
    p.allocs_per_task = 10;
    p.alloc_size = 1024;
    test::TinyApp app(p);
    const jvm::RunResult r = h.vm.run(app, 2);

    const auto records = jvm::parseGcLog(log);
    EXPECT_EQ(records.size(), r.gc.minor_count);
    for (const auto &rec : records) {
        EXPECT_EQ(rec.capacity, cfg.heap.capacity);
        EXPECT_LE(rec.after, rec.before);
    }
}

TEST(AdaptiveIntegration, ResizingReducesGcTimeOnStarvedHeap)
{
    auto run = [](bool adaptive) {
        jvm::VmConfig cfg = test::VmHarness::defaultVmConfig();
        cfg.heap.capacity = 2 * units::MiB;
        cfg.adaptive.enabled = adaptive;
        test::VmHarness h(4, cfg);
        test::TinyAppParams p;
        p.tasks_per_thread = 300;
        p.allocs_per_task = 10;
        p.alloc_size = 1024;
        p.alloc_ttl = 256; // young deaths: bigger eden -> fewer GCs
        test::TinyApp app(p);
        return h.vm.run(app, 4);
    };
    const auto fixed = run(false);
    const auto adaptive = run(true);
    EXPECT_GT(adaptive.gc.young_resizes, 0u);
    EXPECT_LT(adaptive.gc.minor_count, fixed.gc.minor_count);
    EXPECT_LT(adaptive.gc_time, fixed.gc_time);
}

} // namespace
