/**
 * @file
 * Shard supervisor tests: exit classification, the exponential backoff
 * schedule, and end-to-end fork/monitor/retry behavior against small
 * /bin/sh stand-in workers — crash-then-succeed recovery, deterministic
 * failures not retried, and honest degradation when the retry budget
 * runs out.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/supervisor.hh"

namespace {

using namespace jscale;
using core::FailureClass;

TEST(ClassifyWorkerExit, CoversEveryClass)
{
    EXPECT_EQ(core::classifyWorkerExit(true, 0, false, false),
              FailureClass::None);
    EXPECT_EQ(core::classifyWorkerExit(true, 1, false, false),
              FailureClass::Deterministic);
    EXPECT_EQ(core::classifyWorkerExit(true, 127, false, false),
              FailureClass::Deterministic);
    EXPECT_EQ(core::classifyWorkerExit(false, 0, true, false),
              FailureClass::Transient);
    // A worker the supervisor killed for blowing its deadline reads as
    // signaled too; the timed_out flag must win.
    EXPECT_EQ(core::classifyWorkerExit(false, 0, true, true),
              FailureClass::Timeout);
}

TEST(ClassifyWorkerExit, NamesAreStable)
{
    EXPECT_STREQ(core::failureClassName(FailureClass::None), "none");
    EXPECT_STREQ(core::failureClassName(FailureClass::Deterministic),
                 "deterministic");
    EXPECT_STREQ(core::failureClassName(FailureClass::Transient),
                 "transient");
    EXPECT_STREQ(core::failureClassName(FailureClass::Timeout), "timeout");
}

TEST(BackoffDelay, DoublesPerRetryAndCaps)
{
    EXPECT_EQ(core::backoffDelayMs(250, 1), 250u);
    EXPECT_EQ(core::backoffDelayMs(250, 2), 500u);
    EXPECT_EQ(core::backoffDelayMs(250, 3), 1000u);
    EXPECT_EQ(core::backoffDelayMs(250, 8), 30'000u); // 32000 capped
    EXPECT_EQ(core::backoffDelayMs(250, 60), 30'000u); // shift clamped
    EXPECT_EQ(core::backoffDelayMs(0, 5), 0u);
    EXPECT_EQ(core::backoffDelayMs(250, 0), 0u);
}

class SuperviseTest : public ::testing::Test
{
  protected:
    void SetUp() override { std::filesystem::remove_all(dir_); }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    core::SupervisorConfig fastConfig()
    {
        core::SupervisorConfig cfg;
        cfg.retries = 2;
        cfg.backoff_ms = 1; // keep test wall-clock tiny
        cfg.log_dir = dir_;
        return cfg;
    }

    static core::ArgvBuilder shell(const std::string &script)
    {
        return [script](std::uint32_t) {
            return std::vector<std::string>{"/bin/sh", "-c", script};
        };
    }

    const std::string dir_ = "supervise_test_dir";
};

TEST_F(SuperviseTest, CleanWorkersSucceedFirstAttempt)
{
    std::ostringstream log;
    const auto report =
        core::superviseWorkers(3, fastConfig(), shell("exit 0"), log);
    EXPECT_TRUE(report.allSucceeded());
    EXPECT_EQ(report.totalAttempts(), 3u);
    for (const auto &w : report.workers) {
        ASSERT_EQ(w.attempts.size(), 1u);
        EXPECT_EQ(w.attempts[0].failure, FailureClass::None);
    }
}

TEST_F(SuperviseTest, CrashedWorkerIsRetriedAndRecovers)
{
    std::filesystem::create_directories(dir_);
    // First attempt leaves a marker and dies by SIGKILL — exactly the
    // chaos failure mode; the retry finds the marker and succeeds.
    const std::string marker = dir_ + "/once";
    const std::string script = "if [ -f " + marker +
                               " ]; then exit 0; else touch " + marker +
                               " && kill -9 $$; fi";
    std::ostringstream log;
    const auto report =
        core::superviseWorkers(1, fastConfig(), shell(script), log);
    EXPECT_TRUE(report.allSucceeded());
    ASSERT_EQ(report.workers[0].attempts.size(), 2u);
    EXPECT_EQ(report.workers[0].attempts[0].failure,
              FailureClass::Transient);
    EXPECT_EQ(report.workers[0].attempts[0].term_signal, 9);
    EXPECT_EQ(report.workers[0].attempts[1].failure, FailureClass::None);
    EXPECT_NE(log.str().find("retrying"), std::string::npos);
}

TEST_F(SuperviseTest, DeterministicFailureIsNotRetried)
{
    // A normal nonzero exit repeats identically in a deterministic
    // simulator; retrying would burn budget for nothing.
    std::ostringstream log;
    const auto report =
        core::superviseWorkers(1, fastConfig(), shell("exit 3"), log);
    EXPECT_FALSE(report.allSucceeded());
    ASSERT_EQ(report.workers[0].attempts.size(), 1u);
    EXPECT_EQ(report.workers[0].attempts[0].failure,
              FailureClass::Deterministic);
    EXPECT_EQ(report.workers[0].attempts[0].exit_code, 3);
    EXPECT_NE(log.str().find("not retrying"), std::string::npos);
}

TEST_F(SuperviseTest, RetryBudgetExhaustionDegradesHonestly)
{
    core::SupervisorConfig cfg = fastConfig();
    cfg.retries = 1;
    std::ostringstream log;
    const auto report =
        core::superviseWorkers(1, cfg, shell("kill -9 $$"), log);
    EXPECT_FALSE(report.allSucceeded());
    // First attempt + exactly one retry, then give up.
    ASSERT_EQ(report.workers[0].attempts.size(), 2u);
    for (const auto &a : report.workers[0].attempts)
        EXPECT_EQ(a.failure, FailureClass::Transient);
    EXPECT_NE(log.str().find("retry budget exhausted"),
              std::string::npos);

    std::ostringstream printed;
    report.print(printed);
    EXPECT_NE(printed.str().find("FAILED"), std::string::npos);
}

TEST_F(SuperviseTest, MixedFleetReportsPerWorker)
{
    core::SupervisorConfig cfg = fastConfig();
    cfg.retries = 0;
    const core::ArgvBuilder argv_for = [](std::uint32_t shard) {
        return std::vector<std::string>{
            "/bin/sh", "-c", shard == 0 ? "exit 0" : "exit 7"};
    };
    std::ostringstream log;
    const auto report = core::superviseWorkers(2, cfg, argv_for, log);
    EXPECT_FALSE(report.allSucceeded());
    EXPECT_TRUE(report.workers[0].succeeded);
    EXPECT_FALSE(report.workers[1].succeeded);
    EXPECT_EQ(report.workers[1].last()->exit_code, 7);
}

TEST_F(SuperviseTest, WallClockTimeoutKillsAndClassifies)
{
    core::SupervisorConfig cfg = fastConfig();
    cfg.retries = 0;
    cfg.timeout_s = 1;
    std::ostringstream log;
    // The in-process sim-time watchdog cannot fire in a wedged worker;
    // the supervisor's wall clock is the backstop.
    const auto report =
        core::superviseWorkers(1, cfg, shell("sleep 30"), log);
    EXPECT_FALSE(report.allSucceeded());
    ASSERT_EQ(report.workers[0].attempts.size(), 1u);
    EXPECT_EQ(report.workers[0].attempts[0].failure,
              FailureClass::Timeout);
    EXPECT_NE(log.str().find("wall clock"), std::string::npos);
}

TEST_F(SuperviseTest, WorkerLogsAreCapturedPerAttempt)
{
    std::ostringstream log;
    const auto report = core::superviseWorkers(
        1, fastConfig(), shell("echo worker-was-here"), log);
    ASSERT_TRUE(report.allSucceeded());
    const std::string &path = report.workers[0].attempts[0].log_path;
    ASSERT_FALSE(path.empty());
    std::ifstream in(path);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    EXPECT_NE(contents.find("worker-was-here"), std::string::npos);
}

} // namespace
