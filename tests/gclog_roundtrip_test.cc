/**
 * @file
 * Property test: GC log lines written by GcLogWriter parse back into
 * records matching the originating events for a randomized event
 * stream. The log format quantizes (occupancy to KiB, pause to 100 ns),
 * so the round-trip assertions allow exactly those quantization errors
 * and nothing more.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "base/random.hh"
#include "jvm/gc/gclog.hh"
#include "jvm/heap/heap.hh"

namespace {

using namespace jscale;

/** Synthesize one random plausible GcEvent. */
jvm::GcEvent
randomEvent(Rng &rng, std::uint64_t sequence, Ticks &clock)
{
    jvm::GcEvent ev;
    ev.kind = rng.chance(0.3) ? jvm::GcKind::Full : jvm::GcKind::Minor;
    ev.sequence = sequence;
    clock += static_cast<Ticks>(rng.range(1, 50 * units::MS));
    ev.requested_at = clock;
    ev.safepoint_at =
        clock + static_cast<Ticks>(rng.range(0, 500 * units::US));
    ev.finished_at = ev.safepoint_at +
                     static_cast<Ticks>(rng.range(1, 80 * units::MS));
    clock = ev.finished_at;
    ev.reclaimed_bytes =
        static_cast<Bytes>(rng.range(0, 256 * units::MiB));
    ev.moved_bytes = static_cast<Bytes>(rng.range(0, 16 * units::MiB));
    return ev;
}

TEST(GcLogRoundTrip, RandomEventStreamSurvivesWriteThenParse)
{
    // The writer reads live occupancy from a heap; an untouched heap
    // reports zero, so "before" equals the event's reclaimed bytes.
    jvm::HeapConfig hc;
    hc.capacity = 512 * units::MiB;
    jvm::Heap heap(hc, 1, nullptr);

    Rng rng(0xfeedface);
    constexpr int kEvents = 300;

    std::ostringstream os;
    jvm::GcLogWriter writer(os, heap);
    std::vector<jvm::GcEvent> events;
    Ticks clock = 0;
    for (int i = 0; i < kEvents; ++i) {
        events.push_back(
            randomEvent(rng, static_cast<std::uint64_t>(i), clock));
        writer.onGcStart(events.back().kind, events.back().sequence,
                         events.back().safepoint_at);
        writer.onGcEnd(events.back(), events.back().finished_at);
    }
    EXPECT_EQ(writer.lines(), static_cast<std::uint64_t>(kEvents));

    std::istringstream is(os.str());
    const auto records = jvm::parseGcLog(is);
    ASSERT_EQ(records.size(), static_cast<std::size_t>(kEvents));

    for (int i = 0; i < kEvents; ++i) {
        const jvm::GcEvent &ev = events[static_cast<std::size_t>(i)];
        const jvm::GcLogRecord &rec =
            records[static_cast<std::size_t>(i)];
        SCOPED_TRACE("event " + std::to_string(i));

        // Kind is exact (Remark logs as a non-full "GC" line).
        EXPECT_EQ(rec.full, ev.kind == jvm::GcKind::Full);

        // Pause survives modulo the 100 ns resolution of "%.7f secs".
        const Ticks pause = ev.pause();
        const Ticks delta =
            rec.pause > pause ? rec.pause - pause : pause - rec.pause;
        EXPECT_LE(delta, 100u) << "pause " << pause << " parsed as "
                               << rec.pause;

        // Heap delta survives modulo KiB truncation of both endpoints.
        EXPECT_EQ(rec.capacity, hc.capacity);
        const Bytes parsed_delta = rec.before - rec.after;
        EXPECT_LE(parsed_delta, ev.reclaimed_bytes);
        EXPECT_GT(parsed_delta + units::KiB, ev.reclaimed_bytes);
    }
}

TEST(GcLogRoundTrip, SummaryAggregatesMatchTheStream)
{
    jvm::HeapConfig hc;
    hc.capacity = 64 * units::MiB;
    jvm::Heap heap(hc, 1, nullptr);

    Rng rng(42);
    std::ostringstream os;
    jvm::GcLogWriter writer(os, heap);
    std::uint64_t minors = 0;
    std::uint64_t fulls = 0;
    Ticks clock = 0;
    for (int i = 0; i < 100; ++i) {
        const jvm::GcEvent ev =
            randomEvent(rng, static_cast<std::uint64_t>(i), clock);
        (ev.kind == jvm::GcKind::Full ? fulls : minors) += 1;
        writer.onGcEnd(ev, ev.finished_at);
    }

    std::istringstream is(os.str());
    const auto summary = jvm::summarizeGcLog(jvm::parseGcLog(is));
    EXPECT_EQ(summary.minor_count, minors);
    EXPECT_EQ(summary.full_count, fulls);
    EXPECT_GT(summary.total_pause, 0u);
    EXPECT_GE(summary.total_pause, summary.max_pause);
}

TEST(GcLogRoundTrip, NonGcLinesAreSkipped)
{
    std::istringstream is(
        "starting run\n"
        "[GC (Allocation Failure)  412K->67K(1024K), 0.0003120 secs]\n"
        "noise [GC] noise\n"
        "[Full GC (Ergonomics)  897K->411K(1024K), 0.0041230 secs]\n");
    const auto records = jvm::parseGcLog(is);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_FALSE(records[0].full);
    EXPECT_TRUE(records[1].full);
    EXPECT_EQ(records[0].pause, 312000u);
    EXPECT_EQ(records[1].before, 897 * units::KiB);
}

} // namespace
