/**
 * @file
 * Tests for the generational heap: geometry, allocation and death
 * bookkeeping, the paper's lifespan metric, minor/full collection
 * semantics and the compartmentalized mode.
 */

#include <gtest/gtest.h>

#include "jvm/heap/heap.hh"

namespace {

using namespace jscale;
using jvm::AllocStatus;
using jvm::Heap;
using jvm::HeapConfig;
using jvm::kImmortalTtl;
using jvm::ListenerChain;
using jvm::RuntimeListener;

HeapConfig
smallConfig()
{
    HeapConfig cfg;
    cfg.capacity = 3 * units::MiB;
    return cfg;
}

TEST(Heap, GeometryPartitionsCapacity)
{
    Heap h(smallConfig(), 2, nullptr);
    const Bytes young = h.edenCapacity() + 2 * h.survivorCapacity();
    EXPECT_EQ(young + h.oldCapacity(), smallConfig().capacity);
    EXPECT_GT(h.edenCapacity(), h.survivorCapacity());
    EXPECT_GT(h.oldCapacity(), h.edenCapacity());
}

TEST(Heap, AllocationAccounting)
{
    Heap h(smallConfig(), 2, nullptr);
    EXPECT_EQ(h.allocate(0, 100, 1000, 0, 0), AllocStatus::Ok);
    EXPECT_EQ(h.allocate(1, 200, 1000, 0, 0), AllocStatus::Ok);
    EXPECT_EQ(h.edenUsed(), 300u);
    EXPECT_EQ(h.globalAllocatedBytes(), 300u);
    EXPECT_EQ(h.ownerAllocatedBytes(0), 100u);
    EXPECT_EQ(h.ownerAllocatedBytes(1), 200u);
    EXPECT_EQ(h.liveBytes(), 300u);
    EXPECT_EQ(h.liveObjects(), 2u);
    EXPECT_EQ(h.heapStats().objects_allocated, 2u);
}

TEST(Heap, DeathAtOwnerTtl)
{
    Heap h(smallConfig(), 1, nullptr);
    // Object dies after the owner allocates 150 more bytes.
    h.allocate(0, 100, 150, 0, 0);
    EXPECT_EQ(h.liveObjects(), 1u);
    h.allocate(0, 100, kImmortalTtl, 0, 0); // 100 more: not yet
    EXPECT_EQ(h.liveObjects(), 2u);
    h.allocate(0, 100, kImmortalTtl, 0, 0); // 200 total: dies now
    EXPECT_EQ(h.liveObjects(), 2u);
    EXPECT_EQ(h.heapStats().objects_died, 1u);
    EXPECT_EQ(h.heapStats().bytes_died, 100u);
}

TEST(Heap, TtlZeroDiesImmediately)
{
    // A TTL-0 temporary's death threshold equals the owner clock at its
    // own allocation, so it dies in the same death-processing pass.
    Heap h(smallConfig(), 1, nullptr);
    h.allocate(0, 64, 0, 0, 0);
    EXPECT_EQ(h.liveObjects(), 0u);
    EXPECT_EQ(h.heapStats().objects_died, 1u);
    EXPECT_DOUBLE_EQ(h.heapStats().lifespan.fractionBelow(1), 1.0);
}

TEST(Heap, LifespanIsGlobalBytesBetweenBirthAndDeath)
{
    // The paper's metric: owner 0's object must accumulate lifespan from
    // owner 1's allocations too.
    Heap h(smallConfig(), 2, nullptr);
    h.allocate(0, 100, 50, 0, 0); // dies once owner 0 allocates 50 more
    // Owner 1 allocates 1000 bytes meanwhile.
    h.allocate(1, 1000, kImmortalTtl, 0, 0);
    // Owner 0 allocates 50 bytes: the first object dies. Global clock
    // advanced by 1000 (owner 1) + 50 (own) = 1050 since birth; the
    // death point interpolates to the threshold crossing at the end of
    // the window.
    h.allocate(0, 50, kImmortalTtl, 0, 0);
    EXPECT_EQ(h.heapStats().objects_died, 1u);
    // Lifespan must be > 1000 (the foreign allocation happened between
    // birth and death) and <= 1050.
    EXPECT_GT(h.heapStats().lifespan.percentile(0.5), 512u);
    EXPECT_DOUBLE_EQ(h.heapStats().lifespan.fractionBelow(1024), 0.0);
}

TEST(Heap, LifespanInterpolationAvoidsGranularityFloor)
{
    // A TTL-1 temporary should not inherit the whole inter-allocation
    // window of foreign allocation as lifespan.
    Heap h(smallConfig(), 2, nullptr);
    h.allocate(0, 100, 1, 0, 0);
    // Huge foreign traffic in the window.
    for (int i = 0; i < 100; ++i)
        h.allocate(1, 1000, kImmortalTtl, 0, 0);
    // Owner 0's next allocation (10000 bytes) crosses the tiny threshold
    // almost immediately: interpolated lifespan ~ (1/10000) of the
    // window, far below the 100 KB of foreign traffic.
    h.allocate(0, 10000, kImmortalTtl, 0, 0);
    EXPECT_EQ(h.heapStats().objects_died, 1u);
    EXPECT_DOUBLE_EQ(h.heapStats().lifespan.fractionBelow(1024), 1.0);
}

TEST(Heap, NeedsGcWhenEdenFull)
{
    Heap h(smallConfig(), 1, nullptr);
    const Bytes chunk = 64 * units::KiB;
    Bytes allocated = 0;
    while (h.allocate(0, chunk, kImmortalTtl, 0, 0) == AllocStatus::Ok)
        allocated += chunk;
    EXPECT_GT(allocated, 0u);
    EXPECT_LE(h.edenUsed() + chunk, h.edenCapacity() + chunk);
    EXPECT_EQ(h.allocate(0, chunk, kImmortalTtl, 0, 0),
              AllocStatus::NeedsGc);
    // Failed allocation must not change any accounting.
    EXPECT_EQ(h.globalAllocatedBytes(), allocated);
}

TEST(Heap, MinorGcReclaimsDeadAndCopiesLive)
{
    Heap h(smallConfig(), 1, nullptr);
    h.allocate(0, 1000, 0, 0, 0);    // dies on next alloc
    h.allocate(0, 2000, kImmortalTtl, 0, 0); // pinned: survives
    h.allocate(0, 500, 100000, 0, 0);        // live, young
    const auto w = h.collectMinor(0);
    EXPECT_EQ(w.reclaimed_bytes, 1000u);
    // Pinned objects promote immediately; the young live object copies.
    EXPECT_EQ(w.promoted_bytes, 2000u);
    EXPECT_EQ(w.copied_bytes, 500u);
    EXPECT_EQ(h.edenUsed(), 0u);
    EXPECT_EQ(h.survivorUsed(), 500u);
    EXPECT_EQ(h.oldUsed(), 2000u);
}

TEST(Heap, AgePromotionAfterTenureThreshold)
{
    HeapConfig cfg = smallConfig();
    cfg.tenure_threshold = 2;
    Heap h(cfg, 1, nullptr);
    h.allocate(0, 700, 1 * units::GiB, 0, 0); // long-lived, not pinned
    auto w1 = h.collectMinor(0);
    EXPECT_EQ(w1.copied_bytes, 700u); // age 1: stays in survivor
    EXPECT_EQ(w1.promoted_bytes, 0u);
    auto w2 = h.collectMinor(0);
    EXPECT_EQ(w2.promoted_bytes, 700u); // age 2: promoted
    EXPECT_EQ(h.survivorUsed(), 0u);
    EXPECT_EQ(h.oldUsed(), 700u);
}

TEST(Heap, SurvivorOverflowForcesPromotion)
{
    Heap h(smallConfig(), 1, nullptr);
    // Fill eden with live data larger than the survivor space.
    const Bytes obj = 16 * units::KiB;
    Bytes live = 0;
    while (live + obj <= h.edenCapacity() &&
           h.allocate(0, obj, 1 * units::GiB, 0, 0) == AllocStatus::Ok) {
        live += obj;
    }
    ASSERT_GT(live, h.survivorCapacity());
    const auto w = h.collectMinor(0);
    EXPECT_TRUE(w.survivor_overflow);
    EXPECT_GT(w.promoted_bytes, 0u);
    EXPECT_LE(h.survivorUsed(), h.survivorCapacity());
    EXPECT_EQ(w.copied_bytes + w.promoted_bytes, live);
}

TEST(Heap, FullGcCompactsOldGeneration)
{
    HeapConfig cfg = smallConfig();
    cfg.tenure_threshold = 1; // promote on first survival
    Heap h(cfg, 1, nullptr);
    h.allocate(0, 4000, 6000, 0, 0);  // will die later
    h.allocate(0, 3000, kImmortalTtl, 0, 0);
    h.collectMinor(0); // promotes both (threshold 1)
    EXPECT_EQ(h.oldUsed(), 7000u);
    // Kill the first object (owner allocates past its TTL).
    h.allocate(0, 8000, kImmortalTtl, 0, 0);
    EXPECT_EQ(h.heapStats().objects_died, 1u);
    // Old still holds the dead bytes until the full GC compacts.
    EXPECT_EQ(h.oldUsed(), 7000u);
    const auto w = h.collectFull(0);
    EXPECT_EQ(w.reclaimed_bytes, 4000u);
    EXPECT_EQ(h.oldUsed(), 3000u + 8000u); // live old + evacuated eden
    EXPECT_EQ(h.edenUsed(), 0u);
    EXPECT_EQ(h.survivorUsed(), 0u);
}

TEST(Heap, PeakLiveTracksMaximum)
{
    Heap h(smallConfig(), 1, nullptr);
    h.allocate(0, 1000, 500, 0, 0);  // dies during the 3000 alloc
    h.allocate(0, 3000, 500, 0, 0);  // peak hits 4000 before the death
    h.allocate(0, 500, kImmortalTtl, 0, 0); // crosses the 3000's TTL
    EXPECT_EQ(h.heapStats().peak_live_bytes, 4000u);
    EXPECT_EQ(h.liveBytes(), 500u); // only the pinned object remains
}

TEST(Heap, KillThreadObjectsSparesPinned)
{
    Heap h(smallConfig(), 2, nullptr);
    h.allocate(0, 100, 1 * units::GiB, 0, 0);
    h.allocate(0, 200, kImmortalTtl, 0, 0);
    h.allocate(1, 300, 1 * units::GiB, 0, 0);
    h.killThreadObjects(0, 0);
    EXPECT_EQ(h.heapStats().objects_died, 1u);
    EXPECT_EQ(h.liveBytes(), 500u);
    h.killAllRemaining(0);
    EXPECT_EQ(h.liveBytes(), 0u);
    EXPECT_EQ(h.heapStats().objects_died, 3u);
}

TEST(Heap, KillThenMinorGcDoesNotDoubleCount)
{
    Heap h(smallConfig(), 1, nullptr);
    h.allocate(0, 100, 1 * units::GiB, 0, 0);
    h.killThreadObjects(0, 0);
    const auto w = h.collectMinor(0);
    EXPECT_EQ(w.reclaimed_bytes, 100u);
    EXPECT_EQ(h.heapStats().objects_died, 1u);
    // Stale death-queue entries must not fire after slot reuse.
    h.allocate(0, 100, 1 * units::GiB, 0, 0);
    h.allocate(0, 100, kImmortalTtl, 0, 0);
    EXPECT_EQ(h.heapStats().objects_died, 1u);
}

TEST(Heap, ListenersObserveAllocAndDeath)
{
    struct Probe : RuntimeListener
    {
        int allocs = 0;
        int deaths = 0;
        Bytes last_lifespan = 0;

        void
        onObjectAlloc(const jvm::ObjectRecord &, Ticks) override
        {
            ++allocs;
        }

        void
        onObjectDeath(const jvm::ObjectRecord &, Bytes lifespan,
                      Ticks) override
        {
            ++deaths;
            last_lifespan = lifespan;
        }
    };
    Probe probe;
    ListenerChain chain;
    chain.add(&probe);
    Heap h(smallConfig(), 1, &chain);
    h.allocate(0, 100, 10, 0, 0);
    h.allocate(0, 100, kImmortalTtl, 0, 0);
    EXPECT_EQ(probe.allocs, 2);
    EXPECT_EQ(probe.deaths, 1);
}

TEST(Heap, CompartmentsIsolateOwners)
{
    HeapConfig cfg = smallConfig();
    cfg.compartmentalized = true;
    Heap h(cfg, 4, nullptr);
    EXPECT_EQ(h.compartmentCapacity(), h.edenCapacity() / 4);
    // Fill owner 0's compartment; owner 1 must still allocate fine.
    while (h.allocate(0, 8 * units::KiB, kImmortalTtl, 0, 0) ==
           AllocStatus::Ok) {
    }
    EXPECT_EQ(h.allocate(0, 8 * units::KiB, kImmortalTtl, 0, 0),
              AllocStatus::NeedsGc);
    EXPECT_EQ(h.allocate(1, 8 * units::KiB, kImmortalTtl, 0, 0),
              AllocStatus::Ok);
    EXPECT_GT(h.compartmentUsed(0), 0u);
    EXPECT_EQ(h.compartmentUsed(2), 0u);
}

TEST(Heap, CollectCompartmentRetainsYoungLive)
{
    HeapConfig cfg = smallConfig();
    cfg.compartmentalized = true;
    cfg.tenure_threshold = 2;
    Heap h(cfg, 2, nullptr);
    h.allocate(0, 1000, 0, 0, 0);             // dead at next alloc
    h.allocate(0, 2000, 1 * units::GiB, 0, 0); // live young
    h.allocate(0, 400, kImmortalTtl, 0, 0);    // pinned
    h.allocate(1, 512, 1 * units::GiB, 0, 0);  // other compartment

    const auto w = h.collectCompartment(0, 0);
    EXPECT_EQ(w.reclaimed_bytes, 1000u);
    EXPECT_EQ(w.promoted_bytes, 400u); // pinned promotes
    EXPECT_EQ(w.copied_bytes, 2000u); // young live retained in place
    EXPECT_EQ(h.compartmentUsed(0), 2000u);
    // Owner 1 untouched.
    EXPECT_EQ(h.compartmentUsed(1), 512u);
    // Second collection tenures the survivor (age 2).
    const auto w2 = h.collectCompartment(0, 0);
    EXPECT_EQ(w2.promoted_bytes, 2000u);
    EXPECT_EQ(h.compartmentUsed(0), 0u);
}

TEST(Heap, ImpossibleAllocationDetected)
{
    Heap h(smallConfig(), 1, nullptr);
    EXPECT_FALSE(h.impossibleAllocation(1024));
    EXPECT_TRUE(h.impossibleAllocation(h.edenCapacity() + 1));
}

TEST(Heap, InvalidConfigsDie)
{
    HeapConfig tiny;
    tiny.capacity = 1024;
    EXPECT_DEATH(Heap(tiny, 1, nullptr), "capacity");
    HeapConfig cfg = smallConfig();
    EXPECT_DEATH(Heap(cfg, 0, nullptr), "mutator");
    EXPECT_DEATH({
        Heap h(cfg, 1, nullptr);
        h.allocate(5, 100, 0, 0, 0);
    }, "out of range");
}

} // namespace
