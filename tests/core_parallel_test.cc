/**
 * @file
 * ParallelExecutor regression tests: exception safety of run() (first
 * error in task order, pool never wedges) and per-task isolation of
 * runIsolated() (failed slots carry the error, the batch completes).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "base/error.hh"
#include "core/parallel.hh"

namespace {

using namespace jscale;

jvm::RunResult
resultWithTasks(std::uint64_t tasks)
{
    jvm::RunResult r;
    r.total_tasks = tasks;
    return r;
}

TEST(ParallelExecutor, RunRethrowsFirstErrorInTaskOrder)
{
    std::atomic<int> completed{0};
    std::vector<std::function<jvm::RunResult()>> tasks;
    for (int i = 0; i < 8; ++i) {
        tasks.push_back([i, &completed]() -> jvm::RunResult {
            if (i == 2)
                throw std::runtime_error("boom-2");
            if (i == 5)
                throw std::runtime_error("boom-5");
            ++completed;
            return resultWithTasks(static_cast<std::uint64_t>(i));
        });
    }
    try {
        core::ParallelExecutor(4).run(std::move(tasks));
        FAIL() << "expected the first task error to be rethrown";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom-2");
    }
    // Every non-throwing task still ran: a thrown task must not take
    // the pool (or its siblings) down with it.
    EXPECT_EQ(completed.load(), 6);
}

TEST(ParallelExecutor, RunIsolatedCapturesEachErrorInPlace)
{
    std::vector<std::function<jvm::RunResult()>> tasks;
    for (int i = 0; i < 6; ++i) {
        tasks.push_back([i]() -> jvm::RunResult {
            if (i % 2 == 1)
                throw AbortError("task " + std::to_string(i) +
                                 " aborted");
            return resultWithTasks(static_cast<std::uint64_t>(i + 100));
        });
    }
    const auto outcomes =
        core::ParallelExecutor(3).runIsolated(std::move(tasks));
    ASSERT_EQ(outcomes.size(), 6u);
    for (int i = 0; i < 6; ++i) {
        if (i % 2 == 1) {
            EXPECT_FALSE(outcomes[i].ok) << i;
            EXPECT_EQ(outcomes[i].error,
                      "task " + std::to_string(i) + " aborted");
        } else {
            EXPECT_TRUE(outcomes[i].ok) << i;
            EXPECT_EQ(outcomes[i].result.total_tasks,
                      static_cast<std::uint64_t>(i + 100));
        }
    }
}

TEST(ParallelExecutor, RunIsolatedSequentialMatchesParallel)
{
    auto make = [] {
        std::vector<std::function<jvm::RunResult()>> tasks;
        for (int i = 0; i < 5; ++i) {
            tasks.push_back([i]() -> jvm::RunResult {
                if (i == 4)
                    throw std::runtime_error("tail failure");
                return resultWithTasks(static_cast<std::uint64_t>(i));
            });
        }
        return tasks;
    };
    const auto seq = core::ParallelExecutor(1).runIsolated(make());
    const auto par = core::ParallelExecutor(4).runIsolated(make());
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        EXPECT_EQ(seq[i].ok, par[i].ok) << i;
        EXPECT_EQ(seq[i].error, par[i].error) << i;
        EXPECT_EQ(seq[i].result.total_tasks, par[i].result.total_tasks)
            << i;
    }
}

TEST(ParallelExecutor, NonStdExceptionBecomesUnknownError)
{
    std::vector<std::function<jvm::RunResult()>> tasks;
    tasks.push_back([]() -> jvm::RunResult { throw 42; });
    const auto outcomes =
        core::ParallelExecutor(1).runIsolated(std::move(tasks));
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_EQ(outcomes[0].error, "unknown error");
}

TEST(ParallelExecutor, EmptyBatchesAreNoOps)
{
    EXPECT_TRUE(core::ParallelExecutor(4).run({}).empty());
    EXPECT_TRUE(core::ParallelExecutor(4).runIsolated({}).empty());
}

} // namespace
