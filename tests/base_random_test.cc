/**
 * @file
 * Unit and property tests for the deterministic RNG and distributions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "base/random.hh"

namespace {

using jscale::DiscreteDistribution;
using jscale::Rng;
using jscale::ZipfDistribution;

TEST(Rng, SameSeedSameStream)
{
    Rng a(12345);
    Rng b(12345);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 5);
}

TEST(Rng, ForkIsIndependentOfParentDraws)
{
    Rng parent(99);
    Rng fork_before = parent.fork(7);
    // Drawing from the parent must not change what fork(7) yields.
    Rng parent2(99);
    for (int i = 0; i < 50; ++i)
        parent2.next();
    Rng fork_after = parent2.fork(7);
    // fork derives from the constructed state; the second parent has
    // advanced, so its fork differs — forks must be taken up front.
    // What we require: the same parent state forks identically...
    Rng parent3(99);
    Rng fork_same = parent3.fork(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(fork_before.next(), fork_same.next());
    (void)fork_after;
}

TEST(Rng, ForkStreamsAreDistinct)
{
    Rng parent(42);
    Rng a = parent.fork(1);
    Rng b = parent.fork(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(4);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(5);
    for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 48ULL, 1000000ULL}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowCoversAllValues)
{
    Rng rng(6);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.range(3, 6);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 6);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(8);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(250.0);
    EXPECT_NEAR(sum / n, 250.0, 5.0);
}

TEST(Rng, NormalMoments)
{
    Rng rng(9);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal(10.0, 2.0);
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(10);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

/** Bounded Pareto draws must stay inside their bounds. */
class ParetoBoundsTest
    : public ::testing::TestWithParam<std::tuple<double, double, double>>
{
};

TEST_P(ParetoBoundsTest, InBounds)
{
    const auto [alpha, lo, hi] = GetParam();
    Rng rng(11);
    for (int i = 0; i < 20000; ++i) {
        const double v = rng.paretoBounded(alpha, lo, hi);
        EXPECT_GE(v, lo * 0.999);
        EXPECT_LE(v, hi * 1.001);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParetoBoundsTest,
    ::testing::Values(std::make_tuple(0.5, 16.0, 1024.0),
                      std::make_tuple(1.0, 32.0, 2048.0),
                      std::make_tuple(1.1, 32.0, 2048.0),
                      std::make_tuple(2.5, 1.0, 1e7)));

TEST(ParetoBounded, HeavierTailWithSmallerAlpha)
{
    Rng rng(12);
    double mean_small_alpha = 0.0;
    double mean_large_alpha = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        mean_small_alpha += rng.paretoBounded(0.5, 16, 65536);
    for (int i = 0; i < n; ++i)
        mean_large_alpha += rng.paretoBounded(2.0, 16, 65536);
    EXPECT_GT(mean_small_alpha, mean_large_alpha);
}

TEST(ZipfDistribution, UniformWhenSkewZero)
{
    ZipfDistribution z(4, 0.0);
    Rng rng(13);
    std::vector<int> counts(4, 0);
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ++counts[z.sample(rng)];
    for (const int c : counts)
        EXPECT_NEAR(c, n / 4, n / 40);
}

TEST(ZipfDistribution, SkewFavorsLowRanks)
{
    ZipfDistribution z(8, 1.2);
    Rng rng(14);
    std::vector<int> counts(8, 0);
    for (int i = 0; i < 40000; ++i)
        ++counts[z.sample(rng)];
    EXPECT_GT(counts[0], counts[3]);
    EXPECT_GT(counts[3], counts[7]);
}

TEST(ZipfDistribution, SamplesInRange)
{
    ZipfDistribution z(5, 0.9);
    Rng rng(15);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(z.sample(rng), 5u);
}

TEST(DiscreteDistribution, RespectsWeights)
{
    DiscreteDistribution d({1.0, 0.0, 3.0});
    Rng rng(16);
    std::vector<int> counts(3, 0);
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ++counts[d.sample(rng)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(DiscreteDistribution, SingleOutcome)
{
    DiscreteDistribution d({5.0});
    Rng rng(17);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(d.sample(rng), 0u);
}

} // namespace
