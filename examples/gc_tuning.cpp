/**
 * @file
 * GC tuning example: explores heap sizing (the paper's 3x-min-heap
 * methodology, Sec. II-B) and the compartmentalized-heap future-work
 * proposal (Sec. IV) on one application.
 *
 * Usage: gc_tuning [app] [threads]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "base/output.hh"
#include "core/analyze.hh"
#include "core/experiment.hh"

int
main(int argc, char **argv)
{
    const std::string app = argc > 1 ? argv[1] : "xalan";
    const std::uint32_t threads =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 16;

    using namespace jscale;

    std::cout << "Heap-size sensitivity for " << app << " @ " << threads
              << " threads (heap = factor x minimum requirement)\n\n";
    TextTable t;
    t.header({"heap-factor", "heap", "wall", "gc-time", "gc-share",
              "minor", "full", "mean-pause"});
    for (const double factor : {1.5, 2.0, 3.0, 4.0, 5.0}) {
        core::ExperimentConfig cfg;
        cfg.heap_factor = factor;
        core::ExperimentRunner runner(cfg);
        const jvm::RunResult r = runner.runApp(app, threads);
        t.row({formatFixed(factor, 1), formatBytes(r.heap_capacity),
               formatTicks(r.wall_time), formatTicks(r.gc_time),
               formatPercent(core::ScalabilityAnalyzer::gcShare(r)),
               std::to_string(r.gc.minor_count),
               std::to_string(r.gc.full_count),
               formatTicks(
                   static_cast<Ticks>(r.gc.minor_pauses.mean()))});
    }
    t.print(std::cout);

    std::cout << "\nCompartmentalized heap (future work, Sec. IV) vs. "
                 "shared eden @ "
              << threads << " threads\n\n";
    TextTable c;
    c.header({"heap-mode", "wall", "stw-gc-time", "stw-gcs", "full-gcs",
              "local-gcs", "local-pause"});
    for (const bool compartmentalized : {false, true}) {
        core::ExperimentConfig cfg;
        cfg.vm.heap.compartmentalized = compartmentalized;
        core::ExperimentRunner runner(cfg);
        const jvm::RunResult r = runner.runApp(app, threads);
        c.row({compartmentalized ? "compartmentalized" : "shared",
               formatTicks(r.wall_time), formatTicks(r.gc_time),
               std::to_string(r.gc.minor_count + (compartmentalized
                                                      ? r.gc.full_count
                                                      : 0)),
               std::to_string(r.gc.full_count),
               std::to_string(r.gc.local_count),
               formatTicks(r.gc.local_pause)});
    }
    c.print(std::cout);
    return 0;
}
