/**
 * @file
 * The complete study: sweep all six DaCapo-like applications over the
 * paper's thread/core settings and print every table — scalability
 * classification (E1), workload distribution (E2), lock usage (E3/E4),
 * and mutator/GC time split (E7).
 *
 * Usage: scalability_study [scale]
 *   scale  work-volume multiplier (default 1.0; smaller = faster)
 */

#include <cstdlib>
#include <iostream>

#include "core/experiment.hh"
#include "core/report.hh"
#include "workload/dacapo.hh"

int
main(int argc, char **argv)
{
    jscale::core::ExperimentConfig cfg;
    if (argc > 1)
        cfg.workload_scale = std::atof(argv[1]);

    jscale::core::ExperimentRunner runner(cfg);
    const auto threads = runner.paperThreadCounts();

    jscale::core::SweepSet sweeps;
    for (const auto &app : jscale::workload::dacapoAppNames()) {
        std::cerr << "sweeping " << app << "...\n";
        sweeps[app] = runner.sweep(app, threads);
    }

    jscale::core::printScalabilityTable(std::cout, sweeps);
    std::cout << '\n';
    jscale::core::printWorkloadDistributionTable(std::cout, sweeps);
    std::cout << '\n';
    jscale::core::printLockAcquisitionTable(std::cout, sweeps);
    std::cout << '\n';
    jscale::core::printLockContentionTable(std::cout, sweeps);
    std::cout << '\n';
    jscale::core::printMutatorGcTable(std::cout, sweeps);
    return 0;
}
