/**
 * @file
 * Quickstart: run one DaCapo-like application on the simulated 48-core
 * NUMA machine and print the run summary.
 *
 * Usage: quickstart [app] [threads]
 *   app     one of sunflow, lusearch, xalan, h2, eclipse, jython
 *           (default: xalan)
 *   threads application threads == enabled cores (default: 8)
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/analyze.hh"
#include "core/experiment.hh"
#include "core/report.hh"

int
main(int argc, char **argv)
{
    const std::string app = argc > 1 ? argv[1] : "xalan";
    const std::uint32_t threads =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 8;

    jscale::core::ExperimentConfig cfg;
    jscale::core::ExperimentRunner runner(cfg);

    std::cout << "jscale quickstart: running '" << app << "' with "
              << threads << " threads on a simulated "
              << cfg.machine.name << " machine\n\n";

    const jscale::jvm::RunResult r = runner.runApp(app, threads);
    jscale::core::printRunSummary(std::cout, r);
    return 0;
}
