/**
 * @file
 * Building a custom application model against the public API.
 *
 * Defines "mixer", a synthetic app with one hot shared cache (high
 * contention) and allocation behaviour that mixes short-lived buffers
 * with long-lived results, then runs it through the same study pipeline
 * as the DaCapo models — demonstrating how downstream users plug their
 * own workloads into the framework.
 */

#include <iostream>
#include <memory>

#include "core/analyze.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "workload/task_queue_app.hh"

namespace {

/** Assemble the custom app from the task-queue building blocks. */
jscale::workload::TaskQueueParams
mixerParams()
{
    using namespace jscale;
    workload::TaskQueueParams p;
    p.name = "mixer";
    p.total_tasks = 2500;
    p.chunk_divisor = 30.0;
    p.task_compute_mean = 180 * units::US;
    p.allocs_per_task = 20;

    // Allocation profile: many short-lived buffers, a visible
    // medium-lived result component.
    p.alloc.size_log_mean = 4.8;
    p.alloc.frac_tiny = 0.45;
    p.alloc.frac_short = 0.35;
    p.alloc.frac_medium = 0.15;

    // One deliberately hot shared cache: few stripes, frequent access.
    workload::SharedResourceSpec cache;
    cache.name = "result-cache";
    cache.stripes = 2;
    cache.zipf_skew = 1.1;
    cache.accesses_per_task = 2.5;
    cache.cs_compute = 2 * units::US;
    p.resources = {cache};

    p.pinned_shared = 512 * units::KiB;
    return p;
}

} // namespace

int
main()
{
    using namespace jscale;

    core::ExperimentRunner runner;
    core::SweepSet sweeps;
    auto factory = [] {
        return std::make_unique<workload::TaskQueueApp>(mixerParams());
    };
    for (const std::uint32_t t : {1u, 4u, 16u, 48u})
        sweeps["mixer"].push_back(runner.runCustom(factory, "mixer", t));

    core::printScalabilityTable(std::cout, sweeps);
    std::cout << '\n';
    core::printLockContentionTable(std::cout, sweeps);
    std::cout << '\n';
    core::printLifespanCdfTable(std::cout, "mixer", sweeps["mixer"]);
    return 0;
}
