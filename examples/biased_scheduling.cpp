/**
 * @file
 * Ablation of the paper's first future-work proposal (Sec. IV): biased
 * scheduling that staggers worker-thread phases to reduce lifetime
 * interference. Runs xalan at high thread count with the default and
 * the biased scheduler and compares lifespans and GC time.
 *
 * Usage: biased_scheduling [app] [threads] [groups]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "base/output.hh"
#include "core/analyze.hh"
#include "core/experiment.hh"

int
main(int argc, char **argv)
{
    const std::string app = argc > 1 ? argv[1] : "xalan";
    const std::uint32_t threads =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 48;
    const std::uint32_t groups =
        argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 4;

    using namespace jscale;

    core::ExperimentConfig base;
    core::ExperimentRunner base_runner(base);
    const jvm::RunResult def = base_runner.runApp(app, threads);

    core::ExperimentConfig biased_cfg;
    biased_cfg.biased_scheduling = true;
    biased_cfg.bias_groups = groups;
    core::ExperimentRunner biased_runner(biased_cfg);
    const jvm::RunResult biased = biased_runner.runApp(app, threads);

    std::cout << "Biased-scheduling ablation: " << app << " @ " << threads
              << " threads, " << groups << " phase groups\n\n";
    TextTable t;
    t.header({"metric", "default", "biased"});
    auto row = [&](const std::string &name, const std::string &a,
                   const std::string &b) { t.row({name, a, b}); };
    row("wall time", formatTicks(def.wall_time),
        formatTicks(biased.wall_time));
    row("mutator time", formatTicks(def.mutatorTime()),
        formatTicks(biased.mutatorTime()));
    row("gc time", formatTicks(def.gc_time), formatTicks(biased.gc_time));
    row("nursery survival",
        formatPercent(def.gc.nursery_survival.mean()),
        formatPercent(biased.gc.nursery_survival.mean()));
    row("lifespan < 1 KiB",
        formatPercent(def.heap.lifespan.fractionBelow(1024)),
        formatPercent(biased.heap.lifespan.fractionBelow(1024)));
    row("lifespan < 16 KiB",
        formatPercent(def.heap.lifespan.fractionBelow(16 * 1024)),
        formatPercent(biased.heap.lifespan.fractionBelow(16 * 1024)));
    row("promoted bytes", formatBytes(def.gc.promoted_bytes),
        formatBytes(biased.gc.promoted_bytes));
    t.print(std::cout);
    return 0;
}
