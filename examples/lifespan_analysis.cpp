/**
 * @file
 * Object-lifespan analysis example: attach the Elephant-Tracks-style
 * ObjectTracer, record a binary trace to disk, read it back, and compute
 * the allocated-bytes lifespan CDF (the paper's Fig. 1c/1d methodology)
 * at two thread counts.
 *
 * Usage: lifespan_analysis [app] [low-threads] [high-threads]
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "base/output.hh"
#include "core/experiment.hh"
#include "trace/trace.hh"

namespace {

jscale::trace::LifespanAnalyzer
traceRun(jscale::core::ExperimentRunner &runner, const std::string &app,
         std::uint32_t threads, const std::string &path)
{
    using namespace jscale;

    // Record: run with the tracer attached, streaming a binary trace.
    {
        std::ofstream out(path, std::ios::binary);
        trace::BinaryTraceWriter writer(out);
        trace::ObjectTracer tracer(writer);
        runner.runApp(app, threads, [&tracer](jvm::JavaVm &vm) {
            vm.listeners().add(&tracer);
        });
        writer.flush();
        std::cerr << app << " @ " << threads << " threads: "
                  << tracer.eventsEmitted() << " trace events -> " << path
                  << "\n";
    }

    // Analyze: read the trace back like an offline tool would.
    std::ifstream in(path, std::ios::binary);
    trace::BinaryTraceReader reader(in);
    trace::LifespanAnalyzer analyzer;
    trace::TraceEvent ev;
    while (reader.next(ev))
        analyzer.feed(ev);
    return analyzer;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string app = argc > 1 ? argv[1] : "xalan";
    const std::uint32_t low =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 4;
    const std::uint32_t high =
        argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 48;

    using namespace jscale;

    core::ExperimentRunner runner;
    const std::string low_path = "/tmp/jscale_" + app + "_low.trace";
    const std::string high_path = "/tmp/jscale_" + app + "_high.trace";
    const auto low_a = traceRun(runner, app, low, low_path);
    const auto high_a = traceRun(runner, app, high, high_path);

    std::cout << "\nLifespan CDF for " << app
              << " (lifespan = bytes allocated between an object's birth "
                 "and death)\n\n";
    TextTable t;
    t.header({"lifespan <", std::to_string(low) + " threads",
              std::to_string(high) + " threads"});
    for (const auto thr : trace::paperLifespanThresholds()) {
        t.row({formatBytes(thr),
               formatPercent(low_a.histogram().fractionBelow(thr)),
               formatPercent(high_a.histogram().fractionBelow(thr))});
    }
    t.print(std::cout);

    std::remove(low_path.c_str());
    std::remove(high_path.c_str());
    return 0;
}
