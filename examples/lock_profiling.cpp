/**
 * @file
 * Lock profiling example: attach the DTrace-style LockProfiler to a run
 * and print the per-monitor acquisition/contention/block-time report —
 * the methodology behind the paper's Fig. 1a/1b.
 *
 * Usage: lock_profiling [app] [threads]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/experiment.hh"
#include "core/report.hh"
#include "lockprof/lockprof.hh"

int
main(int argc, char **argv)
{
    const std::string app = argc > 1 ? argv[1] : "xalan";
    const std::uint32_t threads =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 16;

    jscale::core::ExperimentRunner runner;
    jscale::lockprof::LockProfiler profiler;

    const jscale::jvm::RunResult r = runner.runApp(
        app, threads,
        [&profiler](jscale::jvm::JavaVm &vm) {
            vm.listeners().add(&profiler);
        });

    std::cout << "Lock profile for '" << app << "' @ " << threads
              << " threads (wall " << jscale::formatTicks(r.wall_time)
              << ")\n\n";
    profiler.printReport(std::cout);

    std::cout << "\nPer-thread contention (threads with any):\n";
    for (const auto &[tid, c] : profiler.perThread()) {
        if (c.contentions == 0)
            continue;
        std::cout << "  thread " << tid << ": " << c.contentions
                  << " contentions, blocked "
                  << jscale::formatTicks(c.total_block_time) << "\n";
    }
    return 0;
}
