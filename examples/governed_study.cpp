/**
 * @file
 * Concurrency-governor study: run sunflow (scalable) and h2
 * (non-scalable, coarse database lock) at the machine's full thread
 * count with the governor off, hill-climbing, and USL-guided, then
 * print the governed-vs-ungoverned comparison and the recovered
 * throughput at 48 threads.
 *
 * The point of the exercise: a non-scalable application keeps (most of)
 * its best-case throughput even when handed every core, because the
 * governor parks the surplus threads the paper shows are pure loss.
 *
 * Usage: governed_study [scale]
 *   scale  work-volume multiplier (default 0.3; smaller = faster)
 */

#include <cstdlib>
#include <iostream>
#include <vector>

#include "base/output.hh"
#include "control/governor.hh"
#include "core/experiment.hh"
#include "core/report.hh"

int
main(int argc, char **argv)
{
    using namespace jscale;

    double scale = 0.3;
    if (argc > 1)
        scale = std::atof(argv[1]);

    const std::vector<std::string> apps = {"sunflow", "h2"};
    const std::uint32_t full = 48;
    const std::vector<std::uint32_t> threads = {full};

    auto sweepWith = [&](control::GovernorMode mode) {
        core::ExperimentConfig cfg;
        cfg.workload_scale = scale;
        cfg.governor.mode = mode;
        core::ExperimentRunner runner(cfg);
        return runner.sweepApps(apps, threads);
    };

    std::cerr << "running ungoverned baselines...\n";
    const core::SweepSet off = sweepWith(control::GovernorMode::Off);
    std::cerr << "running hill-climb governed...\n";
    const core::SweepSet hill =
        sweepWith(control::GovernorMode::HillClimb);
    std::cerr << "running USL-guided governed...\n";
    const core::SweepSet usl = sweepWith(control::GovernorMode::UslGuided);

    std::cout << "Policy: hill climbing\n";
    core::printGovernedComparisonTable(std::cout, off, hill);
    std::cout << "\nPolicy: USL-guided\n";
    core::printGovernedComparisonTable(std::cout, off, usl);

    // Recovered throughput at the full thread count: how much of the
    // ungoverned loss each policy claws back.
    std::cout << "\nRecovered throughput at " << full << " threads:\n";
    for (const auto &app : apps) {
        const Ticks base = off.at(app).front().wall_time;
        for (const auto &[name, set] :
             {std::pair<const char *, const core::SweepSet &>{"hill",
                                                              hill},
              {"usl", usl}}) {
            const jvm::RunResult &r = set.at(app).front();
            const double delta = static_cast<double>(base) /
                                     static_cast<double>(r.wall_time) -
                                 1.0;
            std::cout << "  " << app << " / " << name << ": "
                      << formatTicks(r.wall_time) << " vs "
                      << formatTicks(base) << " ungoverned ("
                      << (delta >= 0 ? "+" : "")
                      << formatPercent(delta) << ", final target "
                      << r.governor.final_target << ", "
                      << r.governor.parks << " parks)\n";
        }
    }
    return 0;
}
