/**
 * @file
 * E18 resilience study: sweep the fault-intensity dial and compare a
 * governed run against an ungoverned one at every point.
 *
 * Each intensity expands into a reproducible mixed-fault schedule
 * (core loss, slowdowns, lock-holder preemption, mutator kills/stalls,
 * heap-pressure spikes, GC-worker loss). The ungoverned arm shows raw
 * degradation; the governed arm shows the concurrency governor
 * re-targeting admission after capacity loss. Aborted points are
 * isolated as failed markers — the study always completes.
 *
 * Usage: resilience_study [scale] [threads]
 *   scale    work-volume multiplier (default 0.3; smaller = faster)
 *   threads  mutator threads per run (default 16)
 */

#include <cstdlib>
#include <iostream>

#include "base/units.hh"
#include "core/resilience.hh"

int
main(int argc, char **argv)
{
    using namespace jscale;

    core::ResilienceConfig cfg;
    cfg.app = "xalan";
    cfg.threads = 16;
    cfg.base.workload_scale = 0.3;
    // horizon stays 0 = auto: 3/4 of an unfaulted probe run's wall
    // time, so the schedule lands inside the run at any scale.
    if (argc > 1)
        cfg.base.workload_scale = std::atof(argv[1]);
    if (argc > 2)
        cfg.threads = static_cast<std::uint32_t>(std::atoi(argv[2]));
    // Arm the livelock watchdog: a wedged faulted run becomes a
    // diagnosed failed point instead of hanging the study.
    cfg.base.watchdog = true;

    const auto points = core::runResilienceStudy(cfg);
    core::printResilienceTable(std::cout, points);
    std::cout << "\n";
    core::writeResilienceCsv(std::cout, points);
    return 0;
}
