/**
 * @file
 * jscale — command-line driver for the simulation framework.
 *
 * Subcommands:
 *   apps                         list the modeled applications
 *   run      one application run with a full summary
 *   sweep    thread sweep of one application (E1-style rows)
 *   study    the complete six-app study (all paper tables)
 *   lifespan lifespan CDF across thread counts (Fig. 1c/1d)
 *   locks    per-monitor DTrace-style lock profile
 *   usl      fit the USL model to an existing sweep CSV
 *   faults   parse and print a fault-injection schedule
 *   resilience  E18: throughput vs. fault intensity, gov vs. ungov
 *   traffic  E21: open-system tail latency vs. offered load
 *   collapse E19: scalability collapse by monitor admission policy
 *
 * Common flags: --app <name> --threads <list> --scale <f> --seed <n>
 *               --heap-factor <f> --compartments --biased [--groups g]
 *               --adaptive --governor <policy> --gclog <path> --csv
 *               --faults <spec> --watchdog --checkpoint <path> --resume
 */

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "base/atomic_file.hh"
#include "base/error.hh"
#include "base/output.hh"
#include "check/fuzz.hh"
#include "check/golden.hh"
#include "control/governor.hh"
#include "core/analyze.hh"
#include "core/blame.hh"
#include "core/experiment.hh"
#include "core/plots.hh"
#include "core/report.hh"
#include "core/resilience.hh"
#include "core/shard.hh"
#include "core/supervisor.hh"
#include "core/traffic_study.hh"
#include "core/collapse.hh"
#include "fault/fault.hh"
#include "traffic/arrival.hh"
#include "traffic/tenancy.hh"
#include "jvm/gc/gclog.hh"
#include "jvm/locks/policy.hh"
#include "lockprof/lockprof.hh"
#include "trace/trace.hh"
#include "workload/dacapo.hh"

namespace {

using namespace jscale;

struct CliOptions
{
    std::string command;
    std::string app = "xalan";
    /** True when --app was passed (the profile study defaults to the
     *  full six-app set unless narrowed explicitly). */
    bool app_set = false;
    std::vector<std::uint32_t> threads = {8};
    /** True when --threads was passed (the profile study defaults to
     *  the paper ladder unless overridden explicitly). */
    bool threads_set = false;
    double scale = 1.0;
    std::uint64_t seed = 42;
    double heap_factor = 3.0;
    bool compartments = false;
    bool biased = false;
    std::uint32_t groups = 4;
    bool adaptive = false;
    bool concurrent = false;
    bool scatter = false;
    std::uint32_t replicas = 1;
    bool per_thread = false;
    std::string gclog_path;
    std::string trace_out = "jscale.trace";
    std::string plots_dir;
    std::string trace_in;
    bool csv = false;
    std::string timeline_path;
    std::string metrics_path;
    std::uint64_t metrics_interval_ms = 0;
    std::uint32_t jobs = 0;
    control::GovernorMode governor = control::GovernorMode::Off;
    std::uint64_t governor_interval_ms = 5;
    std::string faults_spec;
    fault::FaultPlan fault_plan;
    bool watchdog = false;
    std::uint64_t watchdog_interval_ms = 1000;
    std::string checkpoint_path;
    bool resume = false;
    std::vector<double> intensities = {0.0, 0.25, 0.5, 0.75, 1.0};
    std::uint64_t horizon_ms = 0; // 0 = auto (3/4 of probe run)
    /** Arm the invariant oracle suite on every run. */
    bool oracles = false;
    /** Attach the wait-state attribution profiler on every run. */
    bool profile = false;
    /** Slowest-task records kept per profiled run. */
    std::uint32_t profile_topk = 5;
    /** Generic --out path (fuzz reproducer, golden store). */
    std::string out_path;
    /** "record" or "verify" (golden command). */
    std::string golden_action;
    std::uint64_t fuzz_seeds = 20;
    std::uint64_t shrink_budget = 64;
    check::Sabotage sabotage = check::Sabotage::None;
    std::string replay_path;
    /** Open-loop arrival spec (validated at parse time). */
    std::string arrivals;
    /** Multi-tenant host spec (validated at parse time). */
    std::string tenants_spec;
    std::vector<traffic::TenantSpec> tenants;
    /** Monitor admission policy + knobs (run/sweep/study/collapse). */
    jvm::LockPolicyConfig locks;
    /** True when --lock-policy was passed (collapse sweeps every
     *  policy unless narrowed explicitly). */
    bool lock_policy_set = false;
    /** Offered-load ladder of the traffic study. */
    std::vector<double> loads = {0.25, 0.5, 1.0, 2.0};
    /** Requests per open-loop rung of the traffic study. */
    std::uint64_t requests = 2000;
    /** @name Sharded campaigns (set by the shard/merge wrappers) */
    /** @{ */
    std::uint32_t shard_index = 0;
    std::uint32_t shard_count = 1;
    /** Shared per-point result cache directory (empty = disabled). */
    std::string cache_dir;
    /** Merge mode: cache misses become honest failure rows. */
    bool merge_strict = false;
    /** @} */
};

[[noreturn]] void
usage(int code)
{
    std::cout <<
        "usage: jscale <command> [flags]\n"
        "\n"
        "commands:\n"
        "  apps      list the modeled applications\n"
        "  run       one application run with a full summary\n"
        "  sweep     thread sweep of one application\n"
        "  study     the complete six-app study (all paper tables)\n"
        "  lifespan  lifespan CDF across thread counts (Fig. 1c/1d)\n"
        "  locks     per-monitor lock profile (DTrace-style)\n"
        "  trace     record a binary object trace (Elephant-Tracks "
        "style)\n"
        "  analyze   lifespan/site analysis of a recorded trace file\n"
        "  usl       fit the USL model to a sweep CSV (--in) without\n"
        "            re-running any simulation\n"
        "  faults    parse a --faults schedule and print it (dry run)\n"
        "  resilience  E18: throughput and GC/lock shares vs. fault\n"
        "            intensity, governed vs. ungoverned\n"
        "  profile   E20: wait-state blame decomposition vs. threads\n"
        "            per app, with tail histograms and the USL knee\n"
        "            cross-reference\n"
        "  fuzz      seeded random workloads x faults x governors with\n"
        "            the invariant oracles armed; failures are shrunk\n"
        "            to a minimal replayable reproducer (--out)\n"
        "  golden    record: snapshot a sweep into a golden file;\n"
        "            verify: re-run and fail on any field-level drift\n"
        "  traffic   E21: open-system tail latency — p99 sojourn vs.\n"
        "            offered load vs. threads, knee detection, and the\n"
        "            governed/biased remedies re-scored on the tail\n"
        "  collapse  E19: scalability collapse on a lock-saturated\n"
        "            workload — throughput vs. threads per admission\n"
        "            policy (fifo, barging, malthusian, lcr), with\n"
        "            circulation width and handoff-tail columns\n"
        "  shard     run one deterministic slice of a campaign: plans\n"
        "            every point, executes only those hashing to\n"
        "            --index, persists each finished point durably in\n"
        "            --cache-dir (nested: sweep, study, lifespan,\n"
        "            golden, resilience, fuzz)\n"
        "  merge     reassemble a sharded campaign from --cache-dir;\n"
        "            the output is byte-identical to a single-process\n"
        "            run, and missing points become honest failure\n"
        "            rows (exit 3) unless --fill re-runs them locally\n"
        "  campaign  fork --shards workers, supervise them with a\n"
        "            wall-clock watchdog and crash/timeout retries\n"
        "            (exponential backoff, bounded budget), then merge\n"
        "  supervise run one command (after --) under the same retry\n"
        "            policy; crashes and timeouts retry, deterministic\n"
        "            failures do not\n"
        "\n"
        "flags:\n"
        "  --app <name>        application (default xalan); see 'apps'\n"
        "  --threads <list>    comma-separated thread counts "
        "(default 8)\n"
        "  --scale <f>         work-volume multiplier (default 1.0)\n"
        "  --seed <n>          experiment seed (default 42)\n"
        "  --heap-factor <f>   heap = f x min requirement (default 3)\n"
        "  --compartments      compartmentalized heap (Sec. IV (ii))\n"
        "  --biased            biased scheduling (Sec. IV (i))\n"
        "  --groups <g>        bias phase groups (default 4)\n"
        "  --adaptive          adaptive young-gen sizing\n"
        "  --concurrent        CMS-style concurrent old-gen collector\n"
        "  --scatter           spread enabled cores across sockets\n"
        "  --replicas <n>      repetitions with derived seeds (sweep)\n"
        "  --jobs <n>          host worker threads for sweep/study\n"
        "                      (0 = one per host core, 1 = sequential;\n"
        "                      results are identical for any value)\n"
        "  --governor <p>      concurrency governor policy: off, hill\n"
        "                      (throughput hill climbing) or usl\n"
        "                      (calibrate, fit, clamp to n*)\n"
        "  --governor-interval-ms <n>  governor decision interval\n"
        "                      (default 5)\n"
        "  --per-thread        per-thread breakdown (run command)\n"
        "  --gclog <path>      write a HotSpot-style GC log\n"
        "  --timeline <path>   write a Chrome-trace/Perfetto timeline\n"
        "                      ({app}/{threads} placeholders allowed)\n"
        "  --metrics-interval-ms <n>  sample heap/runqueue/lock gauges\n"
        "                      every n ms into a CSV time series\n"
        "  --metrics <path>    metrics CSV path (default derives from\n"
        "                      --timeline)\n"
        "  --faults <spec>     deterministic fault schedule, e.g.\n"
        "                      \"coreoff@100:n=2:for=200,kill@250\" or\n"
        "                      \"intensity=0.5:horizon=300\"; see "
        "'faults'\n"
        "  --watchdog          arm the sim-time livelock watchdog\n"
        "  --watchdog-interval-ms <n>  watchdog check interval\n"
        "                      (default 1000 simulated ms)\n"
        "  --checkpoint <path> record completed runs in a ledger file\n"
        "  --resume            skip runs already recorded complete\n"
        "                      (requires --checkpoint)\n"
        "  --intensities <l>   resilience x-axis, comma-separated\n"
        "                      fractions (default 0,0.25,0.5,0.75,1)\n"
        "  --horizon-ms <n>    resilience fault window in simulated ms\n"
        "                      (default: auto, 3/4 of an unfaulted run)\n"
        "  --oracles           arm the invariant oracle suite on every\n"
        "                      run; a violation aborts that run with a\n"
        "                      diagnosed message\n"
        "  --profile           attach the wait-state attribution\n"
        "                      profiler (blame buckets + latency\n"
        "                      histograms); primary stats stay\n"
        "                      byte-identical to unprofiled runs\n"
        "  --profile-topk <n>  slowest-task records kept per run\n"
        "                      (default 5; alias --topk)\n"
        "  --seeds <n>         fuzz campaign size (default 20)\n"
        "  --shrink-budget <n> max re-runs spent shrinking a fuzz\n"
        "                      failure (default 64, range 1..10000)\n"
        "  --sabotage <kind>   seed a bug into the fuzz event stream:\n"
        "                      none, dup-alloc, phantom-death,\n"
        "                      double-release or illegal-handoff\n"
        "                      (oracle self-test)\n"
        "  --lock-policy <p>   monitor admission policy: fifo (strict\n"
        "                      queue order, default), barging (bounded\n"
        "                      unfair window), malthusian (cull excess\n"
        "                      waiters to a passive list) or lcr\n"
        "                      (concurrency restriction at measured\n"
        "                      capacity); collapse sweeps all four\n"
        "                      unless narrowed\n"
        "  --barge-window <n>  barging grant window (default 4)\n"
        "  --active-target <n> malthusian active-set bound (default 2)\n"
        "  --rotation-period <n>  passive-list rotation period in\n"
        "                      handoffs, 0 = never (default 32)\n"
        "  --lcr-max <n>       LCR active-set clamp maximum (default 8)\n"
        "  --handoff-base <t>  fixed ticks charged per contended\n"
        "                      handoff (default 0; collapse default "
        "250)\n"
        "  --coherence-cost <t>  ticks per distinct recent lock owner\n"
        "                      charged at handoff (default 0; collapse\n"
        "                      default 500)\n"
        "  --replay <path>     re-run a fuzz reproducer file\n"
        "  --out <path>        output file (trace, fuzz reproducer,\n"
        "                      golden store)\n"
        "  --in <path>         trace input file (analyze command)\n"
        "  --plots <dir>       write gnuplot figures (study command)\n"
        "  --csv               emit CSV after the tables\n"
        "  --arrivals <spec>   open-loop arrival stream (run/sweep):\n"
        "                      poisson:rate=<r>[:requests=<n>]\n"
        "                      [:queue=<cap>][:shed=drop|oldest],\n"
        "                      burst:rate=<r>:factor=<f>[:on_ms=..]\n"
        "                      [:off_ms=..], or diurnal:rate=<r>:\n"
        "                      peak=<f>[:period_ms=..]\n"
        "  --tenants <list>    co-located JVMs on one machine (run):\n"
        "                      ';'-separated \"<app>:threads=<n>:\n"
        "                      rate=<r>[...]\" tenant specs\n"
        "  --loads <list>      traffic-study offered-load ladder as\n"
        "                      fractions of capacity (default\n"
        "                      0.25,0.5,1,2)\n"
        "  --requests <n>      requests per open-loop rung of the\n"
        "                      traffic study (default 2000)\n"
        "  --index <i> --of <N>  shard identity (shard command)\n"
        "  --shards <n>        campaign worker count (default 2)\n"
        "  --cache-dir <dir>   shared per-point result cache (default\n"
        "                      jscale-cache; campaign default\n"
        "                      jscale-campaign/cache)\n"
        "  --fill              merge: re-run missing points locally\n"
        "                      instead of marking them failed\n"
        "  --retries <n>       extra attempts per worker after a crash\n"
        "                      or timeout (default 2; deterministic\n"
        "                      nonzero exits are never retried)\n"
        "  --backoff-ms <n>    base of the exponential retry backoff\n"
        "                      (default 250)\n"
        "  --timeout-s <n>     wall-clock limit per worker attempt\n"
        "                      (0 = none)\n"
        "  --log-dir <dir>     per-attempt worker logs (campaign\n"
        "                      default jscale-campaign/logs)\n"
        "  --chaos             SIGKILL one worker mid-campaign after a\n"
        "                      few durable records (supervisor\n"
        "                      self-test: retry salvages and resumes)\n"
        "  --chaos-seed <n>    picks the chaos victim shard (default "
        "1)\n"
        "  --chaos-kill-after <n>  durable records committed before\n"
        "                      the kill (default 2)\n"
        "\n"
        "exit codes: 0 success; 1 runtime/domain failure; 2 usage\n"
        "error; 3 partial campaign (missing points after the retry\n"
        "budget). See docs/operations.md.\n";
    std::exit(code);
}

std::vector<std::uint32_t>
parseThreadList(const std::string &arg)
{
    std::vector<std::uint32_t> out;
    std::stringstream ss(arg);
    std::string item;
    while (std::getline(ss, item, ',')) {
        const int v = std::atoi(item.c_str());
        if (v <= 0) {
            std::cerr << "bad thread count '" << item << "'\n";
            std::exit(2);
        }
        out.push_back(static_cast<std::uint32_t>(v));
    }
    if (out.empty()) {
        std::cerr << "empty thread list\n";
        std::exit(2);
    }
    return out;
}

CliOptions
parse(int argc, char **argv)
{
    if (argc < 2)
        usage(2);
    CliOptions o;
    o.command = argv[1];
    if (o.command == "--help" || o.command == "-h")
        usage(0);
    int first_flag = 2;
    if (o.command == "golden" && argc > 2 && argv[2][0] != '-') {
        o.golden_action = argv[2];
        first_flag = 3;
    }
    for (int i = first_flag; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--app") {
            o.app = value();
            o.app_set = true;
        } else if (arg == "--threads") {
            o.threads = parseThreadList(value());
            o.threads_set = true;
        } else if (arg == "--scale") {
            o.scale = std::atof(value());
        } else if (arg == "--seed") {
            o.seed = static_cast<std::uint64_t>(std::atoll(value()));
        } else if (arg == "--heap-factor") {
            o.heap_factor = std::atof(value());
        } else if (arg == "--compartments") {
            o.compartments = true;
        } else if (arg == "--biased") {
            o.biased = true;
        } else if (arg == "--groups") {
            o.groups = static_cast<std::uint32_t>(std::atoi(value()));
        } else if (arg == "--adaptive") {
            o.adaptive = true;
        } else if (arg == "--concurrent") {
            o.concurrent = true;
        } else if (arg == "--scatter") {
            o.scatter = true;
        } else if (arg == "--replicas") {
            o.replicas = static_cast<std::uint32_t>(
                std::atoi(value()));
        } else if (arg == "--jobs") {
            // 0 legitimately means "one worker per host core", so a
            // mistyped value must not alias to it via atoi.
            const std::string v = value();
            if (v.empty() ||
                v.find_first_not_of("0123456789") != std::string::npos) {
                std::cerr << "bad --jobs value '" << v << "'\n";
                std::exit(2);
            }
            o.jobs = static_cast<std::uint32_t>(std::stoul(v));
        } else if (arg == "--governor") {
            const std::string v = value();
            if (!control::parseGovernorMode(v, o.governor)) {
                std::cerr << "bad --governor policy '" << v
                          << "' (expect off, hill or usl)\n";
                std::exit(2);
            }
        } else if (arg == "--governor-interval-ms") {
            // Strict digits: "5x" or "" must not alias to a number.
            const std::string v = value();
            if (v.empty() ||
                v.find_first_not_of("0123456789") != std::string::npos) {
                std::cerr << "bad --governor-interval-ms value '" << v
                          << "'\n";
                std::exit(2);
            }
            o.governor_interval_ms = std::stoull(v);
            if (o.governor_interval_ms == 0) {
                std::cerr << "--governor-interval-ms must be positive\n";
                std::exit(2);
            }
        } else if (arg == "--faults") {
            o.faults_spec = value();
            std::string err;
            if (!fault::FaultPlan::parse(o.faults_spec, o.fault_plan,
                                         err)) {
                std::cerr << "bad --faults spec: " << err << "\n";
                std::exit(2);
            }
        } else if (arg == "--watchdog") {
            o.watchdog = true;
        } else if (arg == "--watchdog-interval-ms") {
            const std::string v = value();
            if (v.empty() ||
                v.find_first_not_of("0123456789") != std::string::npos) {
                std::cerr << "bad --watchdog-interval-ms value '" << v
                          << "'\n";
                std::exit(2);
            }
            o.watchdog_interval_ms = std::stoull(v);
            if (o.watchdog_interval_ms == 0) {
                std::cerr << "--watchdog-interval-ms must be positive\n";
                std::exit(2);
            }
        } else if (arg == "--checkpoint") {
            o.checkpoint_path = value();
        } else if (arg == "--resume") {
            o.resume = true;
        } else if (arg == "--intensities") {
            o.intensities.clear();
            std::stringstream ss(value());
            std::string item;
            while (std::getline(ss, item, ',')) {
                char *end = nullptr;
                const double v = std::strtod(item.c_str(), &end);
                if (item.empty() || end != item.c_str() + item.size() ||
                    v < 0.0 || v > 1.0) {
                    std::cerr << "bad intensity '" << item
                              << "' (expect fractions in [0, 1])\n";
                    std::exit(2);
                }
                o.intensities.push_back(v);
            }
            if (o.intensities.empty()) {
                std::cerr << "empty --intensities list\n";
                std::exit(2);
            }
        } else if (arg == "--horizon-ms") {
            const std::string v = value();
            if (v.empty() ||
                v.find_first_not_of("0123456789") != std::string::npos) {
                std::cerr << "bad --horizon-ms value '" << v << "'\n";
                std::exit(2);
            }
            o.horizon_ms = std::stoull(v);
            if (o.horizon_ms == 0) {
                std::cerr << "--horizon-ms must be positive\n";
                std::exit(2);
            }
        } else if (arg == "--per-thread") {
            o.per_thread = true;
        } else if (arg == "--gclog") {
            o.gclog_path = value();
        } else if (arg == "--timeline") {
            o.timeline_path = value();
        } else if (arg == "--metrics") {
            o.metrics_path = value();
        } else if (arg == "--metrics-interval-ms") {
            o.metrics_interval_ms =
                static_cast<std::uint64_t>(std::atoll(value()));
        } else if (arg == "--oracles") {
            o.oracles = true;
        } else if (arg == "--profile") {
            o.profile = true;
        } else if (arg == "--profile-topk" || arg == "--topk") {
            // Strict digits: "5x" or "" must not alias to a number.
            const std::string v = value();
            if (v.empty() ||
                v.find_first_not_of("0123456789") != std::string::npos) {
                std::cerr << "bad " << arg << " value '" << v << "'\n";
                std::exit(2);
            }
            o.profile_topk =
                static_cast<std::uint32_t>(std::stoul(v));
            if (o.profile_topk == 0) {
                std::cerr << arg << " must be positive\n";
                std::exit(2);
            }
        } else if (arg == "--seeds") {
            const std::string v = value();
            if (v.empty() ||
                v.find_first_not_of("0123456789") != std::string::npos) {
                std::cerr << "bad --seeds value '" << v << "'\n";
                std::exit(2);
            }
            o.fuzz_seeds = std::stoull(v);
            if (o.fuzz_seeds == 0) {
                std::cerr << "--seeds must be positive\n";
                std::exit(2);
            }
        } else if (arg == "--shrink-budget") {
            const std::string v = value();
            if (v.empty() ||
                v.find_first_not_of("0123456789") != std::string::npos) {
                std::cerr << "bad --shrink-budget value '" << v << "'\n";
                std::exit(2);
            }
            o.shrink_budget = std::stoull(v);
            if (o.shrink_budget < 1 || o.shrink_budget > 10000) {
                std::cerr << "--shrink-budget " << o.shrink_budget
                          << " out of range (expect 1..10000 re-runs)\n";
                std::exit(2);
            }
        } else if (arg == "--sabotage") {
            const std::string v = value();
            if (!check::parseSabotage(v, o.sabotage)) {
                std::cerr << "bad --sabotage kind '" << v
                          << "' (expect none, dup-alloc, phantom-death, "
                             "double-release or illegal-handoff)\n";
                std::exit(2);
            }
        } else if (arg == "--lock-policy") {
            const std::string v = value();
            if (!jvm::parseLockPolicy(v, o.locks.policy)) {
                std::cerr << "bad --lock-policy '" << v
                          << "' (expect fifo, barging, malthusian or "
                             "lcr)\n";
                std::exit(2);
            }
            o.lock_policy_set = true;
        } else if (arg == "--barge-window" || arg == "--active-target" ||
                   arg == "--rotation-period" || arg == "--lcr-max" ||
                   arg == "--handoff-base" || arg == "--coherence-cost" ||
                   arg == "--circulation-window") {
            // Strict digits: "5x" or "" must not alias to a number.
            const std::string v = value();
            if (v.empty() ||
                v.find_first_not_of("0123456789") != std::string::npos) {
                std::cerr << "bad " << arg << " value '" << v << "'\n";
                std::exit(2);
            }
            const std::uint64_t n = std::stoull(v);
            if (n == 0 && arg != "--rotation-period" &&
                arg != "--handoff-base" && arg != "--coherence-cost") {
                std::cerr << arg << " must be positive\n";
                std::exit(2);
            }
            if (arg == "--barge-window")
                o.locks.barge_window = static_cast<std::uint32_t>(n);
            else if (arg == "--active-target")
                o.locks.active_target = static_cast<std::uint32_t>(n);
            else if (arg == "--rotation-period")
                o.locks.rotation_period = static_cast<std::uint32_t>(n);
            else if (arg == "--lcr-max")
                o.locks.lcr_max_active = static_cast<std::uint32_t>(n);
            else if (arg == "--handoff-base")
                o.locks.handoff_base = n;
            else if (arg == "--coherence-cost")
                o.locks.coherence_cost = n;
            else
                o.locks.circulation_window =
                    static_cast<std::uint32_t>(n);
        } else if (arg == "--arrivals") {
            o.arrivals = value();
            traffic::ArrivalSpec spec;
            std::string err;
            if (!traffic::ArrivalSpec::parse(o.arrivals, spec, err)) {
                std::cerr << "bad --arrivals spec: " << err << "\n";
                std::exit(2);
            }
        } else if (arg == "--tenants") {
            o.tenants_spec = value();
            std::string err;
            if (!traffic::TenantSpec::parseList(o.tenants_spec,
                                                o.tenants, err)) {
                std::cerr << "bad --tenants spec: " << err << "\n";
                std::exit(2);
            }
        } else if (arg == "--loads") {
            o.loads.clear();
            std::stringstream ss(value());
            std::string item;
            while (std::getline(ss, item, ',')) {
                char *end = nullptr;
                const double v = std::strtod(item.c_str(), &end);
                if (item.empty() || end != item.c_str() + item.size() ||
                    v <= 0.0) {
                    std::cerr << "bad load factor '" << item
                              << "' (expect positive fractions of "
                                 "capacity)\n";
                    std::exit(2);
                }
                o.loads.push_back(v);
            }
            if (o.loads.empty()) {
                std::cerr << "empty --loads list\n";
                std::exit(2);
            }
        } else if (arg == "--requests") {
            const std::string v = value();
            if (v.empty() ||
                v.find_first_not_of("0123456789") != std::string::npos) {
                std::cerr << "bad --requests value '" << v << "'\n";
                std::exit(2);
            }
            o.requests = std::stoull(v);
            if (o.requests == 0) {
                std::cerr << "--requests must be positive\n";
                std::exit(2);
            }
        } else if (arg == "--replay") {
            o.replay_path = value();
        } else if (arg == "--out") {
            o.trace_out = value();
            o.out_path = o.trace_out;
        } else if (arg == "--plots") {
            o.plots_dir = value();
        } else if (arg == "--in") {
            o.trace_in = value();
        } else if (arg == "--csv") {
            o.csv = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::cerr << "unknown flag '" << arg << "'\n";
            usage(2);
        }
    }
    if (o.resume && o.checkpoint_path.empty()) {
        std::cerr << "--resume requires --checkpoint <path>\n";
        std::exit(2);
    }
    return o;
}

/** Exit 2 unless @p app names a modeled application. */
void
requireValidApp(const std::string &app)
{
    // "hotlock" is the synthetic lock-saturation workload behind the
    // E19 collapse study; it stays out of dacapoAppNames() so the
    // paper-suite commands don't sweep it, but any single-app command
    // may ask for it by name.
    if (app == "hotlock")
        return;
    const auto names = workload::dacapoAppNames();
    if (std::find(names.begin(), names.end(), app) != names.end())
        return;
    std::cerr << "unknown app '" << app << "'; modeled apps:";
    for (const auto &name : names)
        std::cerr << " " << name;
    std::cerr << " hotlock\n";
    std::exit(2);
}

core::ExperimentConfig
experimentConfig(const CliOptions &o)
{
    core::ExperimentConfig cfg;
    cfg.seed = o.seed;
    cfg.workload_scale = o.scale;
    cfg.heap_factor = o.heap_factor;
    cfg.vm.heap.compartmentalized = o.compartments;
    cfg.biased_scheduling = o.biased;
    cfg.bias_groups = o.groups;
    cfg.vm.adaptive.enabled = o.adaptive;
    if (o.concurrent)
        cfg.vm.collector = jvm::CollectorKind::ConcurrentOld;
    if (o.scatter)
        cfg.placement = machine::Machine::EnablePolicy::Scatter;
    cfg.timeline_path = o.timeline_path;
    cfg.metrics_path = o.metrics_path;
    cfg.metrics_interval = o.metrics_interval_ms * units::MS;
    cfg.jobs = o.jobs;
    cfg.governor.mode = o.governor;
    cfg.governor.interval = o.governor_interval_ms * units::MS;
    cfg.faults = o.fault_plan;
    cfg.watchdog = o.watchdog;
    cfg.watchdog_config.interval = o.watchdog_interval_ms * units::MS;
    cfg.checkpoint_path = o.checkpoint_path;
    cfg.resume = o.resume;
    cfg.vm.locks = o.locks;
    cfg.oracles = o.oracles;
    cfg.profile = o.profile;
    cfg.profile_topk = o.profile_topk;
    cfg.arrivals = o.arrivals;
    cfg.shard_index = o.shard_index;
    cfg.shard_count = o.shard_count;
    cfg.run_cache_dir = o.cache_dir;
    cfg.merge_strict = o.merge_strict;
    return cfg;
}

/** Multi-tenant run: N JVMs co-located on one simulated machine. */
int
runTenantHost(const CliOptions &o)
{
    for (const auto &spec : o.tenants)
        requireValidApp(spec.app);
    core::ExperimentRunner runner(experimentConfig(o));
    const auto results = runner.runTenants(o.tenants);
    TextTable t;
    t.header({"tenant", "app", "threads", "status", "wall", "tasks"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        const jvm::RunResult &r = results[i];
        t.row({std::to_string(i), r.app_name,
               std::to_string(r.threads),
               r.failed() ? "failed" : "ok", formatTicks(r.wall_time),
               std::to_string(r.total_tasks)});
    }
    t.print(std::cout);
    std::cout << "\n";
    core::printTrafficTable(std::cout, results);
    if (o.csv) {
        std::cout << "\n";
        core::writeTrafficCsv(std::cout, results);
    }
    for (const jvm::RunResult &r : results) {
        if (r.failed()) {
            std::cerr << "tenant " << r.app_name
                      << " failed: " << r.run_error << "\n";
            return 1;
        }
    }
    return 0;
}

int
cmdApps()
{
    TextTable t;
    t.header({"app", "class", "model"});
    t.align(2, TextTable::Align::Left);
    for (const auto &name : workload::dacapoAppNames()) {
        std::string model;
        if (name == "sunflow")
            model = "task queue, compute-heavy (raytracer)";
        else if (name == "lusearch")
            model = "task queue, striped index cache (search)";
        else if (name == "xalan")
            model = "task queue, hot output buffer (XSLT)";
        else if (name == "h2")
            model = "coarse database lock (transactions)";
        else if (name == "eclipse")
            model = "fixed-width compile pipeline";
        else
            model = "interpreter lock, <=4 workers";
        t.row({name,
               workload::dacapoExpectedScalable(name) ? "scalable"
                                                      : "non-scalable",
               model});
    }
    t.print(std::cout);
    return 0;
}

core::VmAttachHook
gcLogHook(const CliOptions &o,
          std::unique_ptr<std::ofstream> &log_stream,
          std::unique_ptr<jvm::GcLogWriter> &writer)
{
    if (o.gclog_path.empty())
        return {};
    log_stream = std::make_unique<std::ofstream>(o.gclog_path);
    if (!*log_stream) {
        std::cerr << "cannot open gc log '" << o.gclog_path << "'\n";
        std::exit(2);
    }
    return [&log_stream, &writer](jvm::JavaVm &vm) {
        writer = std::make_unique<jvm::GcLogWriter>(*log_stream, vm);
        vm.listeners().add(writer.get());
    };
}

int
cmdRun(const CliOptions &o)
{
    if (!o.tenants.empty())
        return runTenantHost(o);
    requireValidApp(o.app);
    core::ExperimentRunner runner(experimentConfig(o));
    std::unique_ptr<std::ofstream> log_stream;
    std::unique_ptr<jvm::GcLogWriter> writer;
    const jvm::RunResult r = runner.runApp(
        o.app, o.threads.front(), gcLogHook(o, log_stream, writer));
    core::printRunSummary(std::cout, r);
    if (r.traffic.enabled) {
        std::cout << "\n";
        core::printTrafficTable(std::cout, {r});
        if (o.csv) {
            std::cout << "\n";
            core::writeTrafficCsv(std::cout, {r});
        }
    }
    if (o.per_thread) {
        std::cout << "\n";
        core::printThreadTable(std::cout, r);
    }
    if (r.profile.enabled) {
        std::cout << "\n";
        core::printBlameTable(std::cout, r);
        if (o.csv) {
            std::cout << "\n";
            core::writeBlameCsv(std::cout, r);
            std::cout << "\n";
            core::writeProfileHistogramCsv(std::cout, r);
        }
    }
    if (r.locks.acquisitions > 0) {
        std::cout << "lock states: " << r.locks.biased_acquisitions
                  << " biased, " << r.locks.thin_acquisitions
                  << " thin, " << r.locks.fat_acquisitions << " fat ("
                  << r.locks.bias_revocations << " revocations, "
                  << r.locks.inflations << " inflations)\n";
    }
    if (r.locks.handoffs > 0) {
        std::cout << "admission ["
                  << jvm::describeLockPolicyConfig(o.locks) << "]: "
                  << r.locks.handoffs << " handoffs, "
                  << r.locks.barged_grants << " barged, "
                  << r.locks.waiters_passivated << " passivated, "
                  << r.locks.waiters_reactivated << " reactivated, "
                  << formatTicks(r.locks.coherence_penalty)
                  << " coherence penalty\n";
    }
    if (r.gc.local_count > 0) {
        std::cout << "local GCs: " << r.gc.local_count << " ("
                  << formatTicks(r.gc.local_pause)
                  << " thread-local pause)\n";
    }
    if (r.gc.concurrent_cycles > 0) {
        std::cout << "concurrent GC: " << r.gc.concurrent_cycles
                  << " cycles, " << r.gc.remark_count << " remarks, "
                  << r.gc.concurrent_failures << " mode failures\n";
    }
    if (r.gc.young_resizes > 0) {
        std::cout << "adaptive sizing: " << r.gc.young_resizes
                  << " young-gen resizes, final young fraction "
                  << formatFixed(r.gc.adaptive.final_young_fraction, 3)
                  << "\n";
    }
    if (writer) {
        std::cout << "gc log: " << writer->lines() << " lines -> "
                  << o.gclog_path << "\n";
    }
    if (!r.timeline_file.empty()) {
        std::cout << "timeline: " << r.timeline_events << " events -> "
                  << r.timeline_file << "\n";
    }
    if (!r.metrics_file.empty()) {
        std::cout << "metrics: " << r.metric_rows << " samples -> "
                  << r.metrics_file << "\n";
    }
    return 0;
}

int
cmdSweep(const CliOptions &o)
{
    requireValidApp(o.app);
    core::ExperimentRunner runner(experimentConfig(o));
    if (o.replicas > 1) {
        // Replicated mode: mean and 95% CI over derived seeds.
        TextTable t;
        t.header({"app", "threads", "replicas", "wall-mean", "wall-ci95",
                  "gc-mean"});
        for (const auto threads : o.threads) {
            const auto reps =
                runner.runReplicated(o.app, threads, o.replicas);
            const auto wall =
                core::ScalabilityAnalyzer::wallTimeConfidence(reps);
            std::vector<double> gcs;
            for (const auto &r : reps)
                gcs.push_back(static_cast<double>(r.gc_time));
            const auto gc = core::ScalabilityAnalyzer::confidence(gcs);
            t.row({o.app, std::to_string(threads),
                   std::to_string(o.replicas),
                   formatTicks(static_cast<Ticks>(wall.mean)),
                   "+/- " + formatTicks(static_cast<Ticks>(wall.ci95)),
                   formatTicks(static_cast<Ticks>(gc.mean))});
        }
        t.print(std::cout);
        return 0;
    }
    core::SweepSet sweeps;
    sweeps[o.app] = runner.sweep(o.app, o.threads);
    core::printScalabilityTable(std::cout, sweeps);
    if (!o.arrivals.empty()) {
        std::cout << "\n";
        core::printTrafficTable(std::cout, sweeps[o.app]);
        if (o.csv) {
            std::cout << "\n";
            core::writeTrafficCsv(std::cout, sweeps[o.app]);
        }
    }
    for (const auto &r : sweeps[o.app]) {
        if (!r.timeline_file.empty()) {
            std::cout << "timeline (" << r.threads << " threads): "
                      << r.timeline_events << " events -> "
                      << r.timeline_file << "\n";
        }
    }
    if (o.csv) {
        std::cout << "\n";
        core::writeScalabilityCsv(std::cout, sweeps);
    }
    return 0;
}

int
cmdStudy(const CliOptions &o)
{
    core::ExperimentRunner runner(experimentConfig(o));
    const auto threads = runner.paperThreadCounts();
    // One batch for the whole (app x threads) cross product, so --jobs
    // parallelism spans apps instead of draining one sweep at a time.
    core::SweepSet sweeps = runner.sweepApps(
        workload::dacapoAppNames(), threads, [](const std::string &app) {
            std::cerr << "sweeping " << app << "...\n";
        });
    core::printScalabilityTable(std::cout, sweeps);
    std::cout << '\n';
    core::printWorkloadDistributionTable(std::cout, sweeps);
    std::cout << '\n';
    core::printLockAcquisitionTable(std::cout, sweeps);
    std::cout << '\n';
    core::printLockContentionTable(std::cout, sweeps);
    std::cout << '\n';
    core::printMutatorGcTable(std::cout, sweeps);
    std::cout << '\n';
    core::printUslTable(std::cout, sweeps);
    if (o.csv) {
        std::cout << "\n";
        core::writeScalabilityCsv(std::cout, sweeps);
        std::cout << "\n";
        core::writeUslCsv(std::cout, sweeps);
    }
    if (!o.plots_dir.empty()) {
        const auto files = core::writeAllFigures(o.plots_dir, sweeps);
        std::cerr << "wrote " << files.size() << " figure files to "
                  << o.plots_dir << "\n";
    }
    return 0;
}

int
cmdLifespan(const CliOptions &o)
{
    requireValidApp(o.app);
    core::ExperimentRunner runner(experimentConfig(o));
    std::vector<jvm::RunResult> sweep = runner.sweep(o.app, o.threads);
    core::printLifespanCdfTable(std::cout, o.app, sweep);
    if (o.csv) {
        std::cout << "\n";
        core::writeLifespanCdfCsv(std::cout, o.app, sweep);
    }
    return 0;
}

int
cmdLocks(const CliOptions &o)
{
    requireValidApp(o.app);
    core::ExperimentRunner runner(experimentConfig(o));
    lockprof::LockProfiler profiler;
    const jvm::RunResult r = runner.runApp(
        o.app, o.threads.front(),
        [&profiler](jvm::JavaVm &vm) { vm.listeners().add(&profiler); });
    std::cout << "Lock profile: " << o.app << " @ " << r.threads
              << " threads (wall " << formatTicks(r.wall_time) << ")\n\n";
    profiler.printReport(std::cout);
    return 0;
}

int
cmdTrace(const CliOptions &o)
{
    requireValidApp(o.app);
    std::ofstream out(o.trace_out, std::ios::binary);
    if (!out) {
        std::cerr << "cannot open '" << o.trace_out << "'\n";
        return 2;
    }
    trace::BinaryTraceWriter writer(out);
    trace::ObjectTracer tracer(writer);
    core::ExperimentRunner runner(experimentConfig(o));
    const jvm::RunResult r = runner.runApp(
        o.app, o.threads.front(),
        [&tracer](jvm::JavaVm &vm) { vm.listeners().add(&tracer); });
    writer.flush();
    std::cout << "traced " << o.app << " @ " << r.threads << " threads: "
              << writer.recordCount() << " events ("
              << r.heap.objects_allocated << " allocations) -> "
              << o.trace_out << "\n";
    return 0;
}

int
cmdAnalyze(const CliOptions &o)
{
    if (o.trace_in.empty()) {
        std::cerr << "analyze requires --in <trace-file>\n";
        return 2;
    }
    std::ifstream in(o.trace_in, std::ios::binary);
    if (!in) {
        std::cerr << "cannot open '" << o.trace_in << "'\n";
        return 2;
    }
    trace::BinaryTraceReader reader(in);
    trace::LifespanAnalyzer analyzer;
    trace::TraceEvent ev;
    std::uint64_t events = 0;
    while (reader.next(ev)) {
        analyzer.feed(ev);
        ++events;
    }
    std::cout << "trace '" << o.trace_in << "': " << events
              << " events, " << analyzer.allocs() << " allocations, "
              << analyzer.deaths() << " deaths\n\n";

    TextTable cdf;
    cdf.header({"lifespan <", "fraction"});
    for (const auto thr : trace::paperLifespanThresholds()) {
        cdf.row({formatBytes(thr),
                 formatPercent(analyzer.histogram().fractionBelow(thr))});
    }
    cdf.print(std::cout);

    std::cout << "\nhottest allocation sites by volume:\n";
    TextTable sites;
    sites.header({"site", "objects", "bytes", "median-lifespan"});
    for (const auto &s : analyzer.topSites(8)) {
        sites.row({std::to_string(s.site), std::to_string(s.objects),
                   formatBytes(s.bytes), formatBytes(s.median_lifespan)});
    }
    sites.print(std::cout);
    return 0;
}

/** Split one CSV line on commas (no quoting in our CSVs). */
std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> fields;
    std::stringstream ss(line);
    std::string item;
    while (std::getline(ss, item, ','))
        fields.push_back(item);
    return fields;
}

/** Parse a strictly-numeric field; exit(2) with context on garbage. */
double
parseCsvNumber(const std::string &field, const char *what,
               std::size_t line_no)
{
    const char *begin = field.c_str();
    char *end = nullptr;
    const double v = std::strtod(begin, &end);
    if (field.empty() || end != begin + field.size()) {
        std::cerr << "bad " << what << " '" << field << "' on line "
                  << line_no << "\n";
        std::exit(2);
    }
    return v;
}

int
cmdUsl(const CliOptions &o)
{
    if (o.trace_in.empty()) {
        std::cerr << "usl requires --in <scalability-csv>\n";
        return 2;
    }
    std::ifstream in(o.trace_in);
    if (!in) {
        std::cerr << "cannot open '" << o.trace_in << "'\n";
        return 2;
    }

    // Locate the needed columns by name, so both writeScalabilityCsv
    // output and hand-made measurement files fit.
    std::string line;
    if (!std::getline(in, line)) {
        std::cerr << "'" << o.trace_in << "' is empty\n";
        return 2;
    }
    const auto header = splitCsvLine(line);
    constexpr std::size_t npos = static_cast<std::size_t>(-1);
    std::size_t app_col = npos;
    std::size_t threads_col = npos;
    std::size_t speedup_col = npos;
    for (std::size_t i = 0; i < header.size(); ++i) {
        if (header[i] == "app")
            app_col = i;
        else if (header[i] == "threads")
            threads_col = i;
        else if (header[i] == "speedup")
            speedup_col = i;
    }
    if (app_col == npos || threads_col == npos || speedup_col == npos) {
        std::cerr << "'" << o.trace_in
                  << "' needs app, threads and speedup columns\n";
        return 2;
    }
    const std::size_t need =
        std::max({app_col, threads_col, speedup_col}) + 1;

    std::vector<core::UslSeries> series;
    std::size_t line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        const auto fields = splitCsvLine(line);
        if (fields.size() < need) {
            std::cerr << "short row on line " << line_no << " of '"
                      << o.trace_in << "'\n";
            return 2;
        }
        const std::string &app = fields[app_col];
        const double threads = parseCsvNumber(fields[threads_col],
                                              "thread count", line_no);
        const double speedup =
            parseCsvNumber(fields[speedup_col], "speedup", line_no);
        if (threads < 1.0 || speedup <= 0.0) {
            std::cerr << "non-positive measurement on line " << line_no
                      << " of '" << o.trace_in << "'\n";
            return 2;
        }
        auto it = std::find_if(
            series.begin(), series.end(),
            [&app](const core::UslSeries &s) { return s.app == app; });
        if (it == series.end()) {
            series.push_back({app, {}});
            it = series.end() - 1;
        }
        it->points.push_back({threads, speedup});
    }
    if (series.empty()) {
        std::cerr << "'" << o.trace_in << "' has no data rows\n";
        return 2;
    }
    core::printUslSeriesTable(std::cout, series);
    return 0;
}

int
cmdFaults(const CliOptions &o)
{
    if (o.faults_spec.empty()) {
        std::cerr << "faults requires --faults <spec>\n";
        return 2;
    }
    // Already validated by parse(); print the expanded schedule.
    std::cout << o.fault_plan.describe() << "\n";
    return 0;
}

int
cmdResilience(const CliOptions &o)
{
    requireValidApp(o.app);
    core::ResilienceConfig cfg;
    cfg.app = o.app;
    cfg.threads = o.threads.front();
    cfg.intensities = o.intensities;
    cfg.horizon = o.horizon_ms * units::MS;
    // --governor selects the governed arm's policy; the study itself
    // toggles governed vs. ungoverned, so off falls back to hill.
    cfg.governed_mode = o.governor != control::GovernorMode::Off
                            ? o.governor
                            : control::GovernorMode::HillClimb;
    cfg.base = experimentConfig(o);
    cfg.base.faults = {};
    cfg.base.governor.mode = control::GovernorMode::Off;

    const auto points = core::runResilienceStudy(cfg);
    core::printResilienceTable(std::cout, points);
    if (o.csv) {
        std::cout << "\n";
        core::writeResilienceCsv(std::cout, points);
    }
    return 0;
}

int
cmdProfile(const CliOptions &o)
{
    core::BlameConfig cfg;
    // Default: the full six-app study over the paper thread ladder;
    // --app / --threads narrow it explicitly.
    if (o.app_set) {
        requireValidApp(o.app);
        cfg.apps = {o.app};
    }
    if (o.threads_set)
        cfg.threads = o.threads;
    cfg.topk = o.profile_topk;
    cfg.base = experimentConfig(o);

    const core::BlameStudy study = core::runBlameStudy(cfg);
    core::printBlameStudyTable(std::cout, study);
    if (o.csv) {
        std::cout << "\n";
        core::writeBlameStudyCsv(std::cout, study);
    }
    if (!o.plots_dir.empty()) {
        std::vector<std::string> files;
        for (const std::string &app : cfg.apps) {
            std::vector<jvm::RunResult> sweep;
            for (const core::BlamePoint &p : study.points) {
                if (p.app == app)
                    sweep.push_back(p.run);
            }
            const auto more =
                core::writeBlameFigure(o.plots_dir, app, sweep);
            files.insert(files.end(), more.begin(), more.end());
        }
        std::cerr << "wrote " << files.size() << " figure files to "
                  << o.plots_dir << "\n";
    }
    return 0;
}

int
cmdFuzz(const CliOptions &o)
{
    if (!o.replay_path.empty()) {
        check::FuzzCase c;
        std::string err;
        if (!check::readReproducer(o.replay_path, c, err)) {
            std::cerr << "bad reproducer: " << err << "\n";
            return 2;
        }
        std::cout << "replaying " << c.describe() << "\n";
        const check::FuzzOutcome out = check::runFuzzCase(c);
        for (const auto &v : out.violations)
            std::cout << "violation: " << v.format() << "\n";
        if (out.run_failed)
            std::cout << "run error: " << out.run_error << "\n";
        if (out.clean()) {
            std::cout << "replay ran clean (" << out.checks
                      << " checks)\n";
            return 0;
        }
        return 1;
    }

    std::vector<std::uint64_t> seeds;
    seeds.reserve(o.fuzz_seeds);
    // The campaign seed list derives from --seed, so two campaigns
    // with the same flags cover the same cases.
    for (std::uint64_t i = 0; i < o.fuzz_seeds; ++i)
        seeds.push_back(o.seed + i);
    check::FuzzCampaignIo io;
    io.shard_index = o.shard_index;
    io.shard_count = o.shard_count;
    if (!o.cache_dir.empty()) {
        io.cache_dir = o.cache_dir;
        std::ostringstream fp;
        fp << "fuzz seeds=" << o.fuzz_seeds << " base=" << o.seed
           << " sabotage=" << check::sabotageName(o.sabotage);
        io.fingerprint = fp.str();
    }
    const check::FuzzReport report = check::runFuzzCampaign(
        seeds, o.sabotage, static_cast<std::uint32_t>(o.shrink_budget),
        &std::cerr, io);
    std::cout << report.cases_run << " case(s), " << report.total_checks
              << " invariant checks, " << report.failures.size()
              << " failure(s)\n";
    if (!report.failed())
        return 0;

    const check::FuzzOutcome &first = report.failures.front();
    std::cout << "first failure: " << first.fuzz_case.describe() << "\n"
              << "  " << first.diagnosis() << "\n"
              << "shrunk (" << report.shrink_runs
              << " re-runs): " << report.shrunk.describe() << "\n";
    const std::string path =
        o.out_path.empty() ? "jscale-fuzz.repro" : o.out_path;
    AtomicFileWriter repro(path);
    std::string werr;
    if (!repro.ok()) {
        std::cerr << "cannot open '" << path << "'\n";
    } else {
        check::writeReproducer(repro.stream(), report);
        if (!repro.commit(werr)) {
            std::cerr << "cannot write '" << path << "': " << werr
                      << "\n";
        } else {
            std::cout << "reproducer -> " << path
                      << " (replay with: jscale fuzz --replay " << path
                      << ")\n";
        }
    }
    return 1;
}

int
cmdTraffic(const CliOptions &o)
{
    core::TrafficStudyConfig cfg;
    // Default: three representative apps over {8, 16} threads;
    // --app / --threads narrow or widen explicitly.
    if (o.app_set) {
        requireValidApp(o.app);
        cfg.apps = {o.app};
    }
    if (o.threads_set)
        cfg.threads = o.threads;
    cfg.load_factors = o.loads;
    std::sort(cfg.load_factors.begin(), cfg.load_factors.end());
    cfg.requests = o.requests;
    cfg.base = experimentConfig(o);
    // The study drives the arrival spec itself, rung by rung.
    cfg.base.arrivals.clear();

    const core::TrafficStudy study = core::runTrafficStudy(cfg);
    core::printTrafficStudyTable(std::cout, study);
    if (o.csv) {
        std::cout << "\n";
        core::writeTrafficStudyCsv(std::cout, study);
    }
    return 0;
}

int
cmdCollapse(const CliOptions &o)
{
    core::CollapseConfig cfg;
    // Default: the E19 lock-saturated microbenchmark over the paper
    // thread ladder, all four policies; --app / --threads /
    // --lock-policy narrow explicitly.
    if (o.app_set) {
        requireValidApp(o.app);
        cfg.app = o.app;
    }
    if (o.threads_set)
        cfg.threads = o.threads;
    if (o.lock_policy_set)
        cfg.policies = {o.locks.policy};
    // --governor adds an E17-governed arm per policy.
    cfg.governed_arms = o.governor != control::GovernorMode::Off;
    cfg.base = experimentConfig(o);
    cfg.base.governor.mode = control::GovernorMode::Off;

    const core::CollapseStudy study = core::runCollapseStudy(cfg);
    core::printCollapseTable(std::cout, study);
    if (o.csv) {
        std::cout << "\n";
        core::writeCollapseCsv(std::cout, study);
    }
    return 0;
}

int
cmdGolden(const CliOptions &o)
{
    const std::string path =
        o.out_path.empty() ? "jscale.golden" : o.out_path;
    if (o.golden_action == "record") {
        requireValidApp(o.app);
        core::ExperimentRunner runner(experimentConfig(o));
        check::GoldenFile file;
        std::ostringstream threads_csv;
        for (std::size_t i = 0; i < o.threads.size(); ++i)
            threads_csv << (i ? "," : "") << o.threads[i];
        file.config.emplace_back("app", o.app);
        file.config.emplace_back("threads", threads_csv.str());
        file.config.emplace_back("seed", std::to_string(o.seed));
        {
            std::ostringstream scale;
            scale.precision(17);
            scale << o.scale;
            file.config.emplace_back("scale", scale.str());
        }
        file.config.emplace_back("fingerprint",
                                 runner.campaignFingerprint());
        if (o.shard_count > 1) {
            // A shard worker executes (and caches) only its slice; the
            // other points come back as skipped markers. Writing a
            // snapshot from that would publish a scratch partial file
            // the merge step then has to race against — so shard
            // workers only populate the cache and the merge's rewrite
            // (shard_count == 1, every point salvaged) is the one
            // authoritative snapshot.
            for (const jvm::RunResult &r :
                 runner.sweep(o.app, o.threads)) {
                if (r.failed()) {
                    std::cerr << "cannot record: run at " << r.threads
                              << " threads failed: " << r.run_error
                              << "\n";
                    return 1;
                }
            }
            std::cout << "shard slice cached; snapshot deferred to "
                         "merge\n";
            return 0;
        }
        for (const jvm::RunResult &r : runner.sweep(o.app, o.threads)) {
            if (r.failed()) {
                std::cerr << "cannot record: run at " << r.threads
                          << " threads failed: " << r.run_error << "\n";
                return 1;
            }
            check::GoldenRun run;
            run.app = r.app_name;
            run.threads = r.threads;
            run.stats = core::runStatSnapshot(r);
            file.runs.push_back(std::move(run));
        }
        std::ofstream out(path);
        if (!out) {
            std::cerr << "cannot open '" << path << "'\n";
            return 2;
        }
        check::writeGolden(out, file);
        std::cout << "recorded " << file.runs.size() << " run(s) -> "
                  << path << "\n";
        return 0;
    }
    if (o.golden_action == "verify") {
        check::GoldenFile file;
        std::string err;
        if (!check::readGoldenFile(path, file, err)) {
            std::cerr << "bad golden file: " << err << "\n";
            return 2;
        }
        // The sweep definition comes from the file; remaining knobs
        // (compartments, governor, ...) come from the CLI and are
        // cross-checked through the recorded fingerprint.
        CliOptions ro = o;
        ro.app = file.configValue("app");
        const std::string threads_s = file.configValue("threads");
        const std::string seed_s = file.configValue("seed");
        const std::string scale_s = file.configValue("scale");
        if (ro.app.empty() || threads_s.empty() || seed_s.empty() ||
            scale_s.empty()) {
            std::cerr << "bad golden file: missing app/threads/seed/"
                         "scale config entries\n";
            return 2;
        }
        requireValidApp(ro.app);
        ro.threads = parseThreadList(threads_s);
        try {
            ro.seed = std::stoull(seed_s);
            ro.scale = std::stod(scale_s);
        } catch (const std::exception &) {
            std::cerr << "bad golden file: malformed seed/scale\n";
            return 2;
        }
        core::ExperimentRunner runner(experimentConfig(ro));
        const std::string recorded = file.configValue("fingerprint");
        if (recorded != runner.campaignFingerprint()) {
            std::cerr << "configuration drift:\n  recorded: " << recorded
                      << "\n  current:  " << runner.campaignFingerprint()
                      << "\n(pass the flags the file was recorded with)\n";
            return 1;
        }
        std::vector<check::GoldenRun> fresh;
        for (const jvm::RunResult &r : runner.sweep(ro.app, ro.threads)) {
            if (r.failed()) {
                std::cerr << "verify run at " << r.threads
                          << " threads failed: " << r.run_error << "\n";
                return 1;
            }
            check::GoldenRun run;
            run.app = r.app_name;
            run.threads = r.threads;
            run.stats = core::runStatSnapshot(r);
            fresh.push_back(std::move(run));
        }
        const auto diffs = check::diffGolden(file, fresh);
        if (diffs.empty()) {
            std::cout << "golden verify OK: " << file.runs.size()
                      << " run(s) bit-identical (" << path << ")\n";
            return 0;
        }
        std::cout << "golden verify FAILED: " << diffs.size()
                  << " field(s) drifted (" << path << ")\n";
        const std::size_t shown =
            std::min<std::size_t>(diffs.size(), 20);
        for (std::size_t i = 0; i < shown; ++i)
            std::cout << "  " << diffs[i].format() << "\n";
        if (shown < diffs.size()) {
            std::cout << "  ... and " << diffs.size() - shown
                      << " more\n";
        }
        return 1;
    }
    std::cerr << "golden requires an action: jscale golden "
                 "record|verify [flags]\n";
    return 2;
}

int
guardedDispatch(const CliOptions &o)
{
    try {
        if (o.command == "apps")
            return cmdApps();
        if (o.command == "run")
            return cmdRun(o);
        if (o.command == "sweep")
            return cmdSweep(o);
        if (o.command == "study")
            return cmdStudy(o);
        if (o.command == "lifespan")
            return cmdLifespan(o);
        if (o.command == "locks")
            return cmdLocks(o);
        if (o.command == "trace")
            return cmdTrace(o);
        if (o.command == "analyze")
            return cmdAnalyze(o);
        if (o.command == "usl")
            return cmdUsl(o);
        if (o.command == "faults")
            return cmdFaults(o);
        if (o.command == "resilience")
            return cmdResilience(o);
        if (o.command == "profile")
            return cmdProfile(o);
        if (o.command == "fuzz")
            return cmdFuzz(o);
        if (o.command == "golden")
            return cmdGolden(o);
        if (o.command == "traffic")
            return cmdTraffic(o);
        if (o.command == "collapse")
            return cmdCollapse(o);
    } catch (const AbortError &e) {
        // A single-run command hit the watchdog or the sim-time guard.
        // Batch commands isolate these per run and never get here.
        std::cerr << "aborted: " << e.what() << "\n";
        return 1;
    }
    std::cerr << "unknown command '" << o.command << "'\n";
    usage(2);
}

/** Parse a token list (no program name) through the normal parser. */
CliOptions
parseArgs(const std::vector<std::string> &args)
{
    std::vector<std::string> storage;
    storage.reserve(args.size() + 1);
    storage.push_back("jscale");
    storage.insert(storage.end(), args.begin(), args.end());
    std::vector<char *> argv;
    argv.reserve(storage.size());
    for (std::string &s : storage)
        argv.push_back(s.data());
    return parse(static_cast<int>(argv.size()), argv.data());
}

/** Strictly-numeric flag value; exit(2) on anything else. */
std::uint64_t
parseDigits(const std::string &v, const std::string &what)
{
    if (v.empty() ||
        v.find_first_not_of("0123456789") != std::string::npos) {
        std::cerr << "bad " << what << " value '" << v << "'\n";
        std::exit(2);
    }
    return std::stoull(v);
}

/**
 * Exit 2 unless @p cmd can run sharded. Shardable commands route every
 * run through the planned sweep executor (where the slice filter and
 * result cache live); run/locks/trace/traffic execute plans directly
 * and would silently ignore the shard arithmetic.
 */
void
requireShardable(const std::string &cmd)
{
    for (const char *ok : {"sweep", "study", "lifespan", "golden",
                           "resilience", "fuzz", "collapse"}) {
        if (cmd == ok)
            return;
    }
    std::cerr << "'" << cmd
              << "' cannot run sharded (supported: sweep, study, "
                 "lifespan, golden, resilience, fuzz, collapse)\n";
    std::exit(2);
}

/** Per-point accounting line: every planned point lands in exactly one
 *  bucket, so a campaign can never lose work silently. */
void
printPointSummary(const char *what)
{
    const core::CampaignPointStats &p = core::campaignPointStats();
    std::cerr << what << ": " << p.executed.load() << " executed, "
              << p.salvaged.load() << " salvaged, " << p.skipped.load()
              << " skipped, " << p.failed.load() << " failed, "
              << p.missing.load() << " missing\n";
}

/** jscale shard --index i --of N [--cache-dir d] <command> [flags] */
int
cmdShard(int argc, char **argv)
{
    std::uint32_t index = 0;
    std::uint32_t of = 0;
    bool of_set = false;
    std::string cache_dir = "jscale-cache";
    int i = 2;
    for (; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--index") {
            index = static_cast<std::uint32_t>(
                parseDigits(value(), "--index"));
        } else if (arg == "--of") {
            of = static_cast<std::uint32_t>(parseDigits(value(), "--of"));
            of_set = true;
        } else if (arg == "--cache-dir") {
            cache_dir = value();
        } else {
            if (arg == "--")
                ++i; // optional separator before the nested command
            break; // nested command starts here
        }
    }
    if (!of_set || of == 0) {
        std::cerr << "shard requires --of <N> with N >= 1\n";
        std::exit(2);
    }
    if (index >= of) {
        std::cerr << "shard --index " << index << " out of range for --of "
                  << of << "\n";
        std::exit(2);
    }
    if (i >= argc) {
        std::cerr << "shard requires a nested command\n";
        std::exit(2);
    }
    requireShardable(argv[i]);
    CliOptions o =
        parseArgs(std::vector<std::string>(argv + i, argv + argc));
    o.shard_index = index;
    o.shard_count = of;
    o.cache_dir = cache_dir;
    core::resetCampaignPointStats();
    const int rc = guardedDispatch(o);
    printPointSummary(
        ("shard " + std::to_string(index) + "/" + std::to_string(of))
            .c_str());
    return rc;
}

/** jscale merge [--cache-dir d] [--fill] <command> [flags] */
int
cmdMerge(int argc, char **argv)
{
    std::string cache_dir = "jscale-cache";
    bool fill = false;
    int i = 2;
    for (; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--cache-dir") {
            if (i + 1 >= argc) {
                std::cerr << "missing value for --cache-dir\n";
                std::exit(2);
            }
            cache_dir = argv[++i];
        } else if (arg == "--fill") {
            fill = true;
        } else {
            if (arg == "--")
                ++i; // optional separator before the nested command
            break;
        }
    }
    if (i >= argc) {
        std::cerr << "merge requires a nested command\n";
        std::exit(2);
    }
    requireShardable(argv[i]);
    CliOptions o =
        parseArgs(std::vector<std::string>(argv + i, argv + argc));
    o.cache_dir = cache_dir;
    o.merge_strict = !fill;
    core::resetCampaignPointStats();
    const int rc = guardedDispatch(o);
    printPointSummary("merge");
    const std::uint64_t missing = core::campaignPointStats().missing;
    if (rc == 0 && missing > 0) {
        std::cerr << "merge: " << missing
                  << " point(s) missing from the cache — partial "
                     "campaign (re-run the failed shards, or pass "
                     "--fill to run them here)\n";
        return 3;
    }
    return rc;
}

/**
 * jscale campaign --shards N [supervisor flags] <command> [flags]
 *
 * Forks N shard workers of this binary, supervises them (watchdog,
 * classify, retry with backoff), then merges in-process. The final
 * exit code comes from the merged data, not the worker exits: a shard
 * that crashed but whose points were salvaged is a success; points
 * still missing after the retry budget make the campaign partial (3).
 */
int
cmdCampaign(int argc, char **argv)
{
    std::uint32_t shards = 2;
    std::string cache_dir = "jscale-campaign/cache";
    std::string log_dir = "jscale-campaign/logs";
    core::SupervisorConfig scfg;
    bool chaos = false;
    std::uint64_t chaos_seed = 1;
    std::uint64_t chaos_kill_after = 2;
    int i = 2;
    for (; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--shards") {
            shards =
                static_cast<std::uint32_t>(parseDigits(value(), arg));
        } else if (arg == "--cache-dir") {
            cache_dir = value();
        } else if (arg == "--log-dir") {
            log_dir = value();
        } else if (arg == "--retries") {
            scfg.retries =
                static_cast<unsigned>(parseDigits(value(), arg));
        } else if (arg == "--backoff-ms") {
            scfg.backoff_ms = parseDigits(value(), arg);
        } else if (arg == "--timeout-s") {
            scfg.timeout_s = parseDigits(value(), arg);
        } else if (arg == "--chaos") {
            chaos = true;
        } else if (arg == "--chaos-seed") {
            chaos_seed = parseDigits(value(), arg);
        } else if (arg == "--chaos-kill-after") {
            chaos_kill_after = parseDigits(value(), arg);
            if (chaos_kill_after == 0) {
                std::cerr << "--chaos-kill-after must be positive\n";
                std::exit(2);
            }
        } else {
            if (arg == "--")
                ++i; // optional separator before the nested command
            break;
        }
    }
    if (shards == 0) {
        std::cerr << "campaign requires --shards >= 1\n";
        std::exit(2);
    }
    if (i >= argc) {
        std::cerr << "campaign requires a nested command\n";
        std::exit(2);
    }
    requireShardable(argv[i]);
    const std::vector<std::string> nested(argv + i, argv + argc);

    scfg.log_dir = log_dir;
    if (chaos) {
        scfg.chaos_kill_after = chaos_kill_after;
        scfg.chaos_victim =
            static_cast<std::uint32_t>(chaos_seed % shards);
        std::cerr << "chaos: shard " << scfg.chaos_victim
                  << " dies after " << chaos_kill_after
                  << " durable record(s) on its first attempt\n";
    }
    const auto argvFor = [&](std::uint32_t s) {
        std::vector<std::string> a = {
            "/proc/self/exe", "shard",       "--index",
            std::to_string(s), "--of",       std::to_string(shards),
            "--cache-dir",     cache_dir};
        a.insert(a.end(), nested.begin(), nested.end());
        return a;
    };
    const core::SupervisorReport report =
        core::superviseWorkers(shards, scfg, argvFor, std::cerr);
    report.print(std::cerr);

    // Merge in-process: with every point a cache hit, this renders the
    // exact bytes a single-process run would produce.
    CliOptions o = parseArgs(nested);
    o.cache_dir = cache_dir;
    o.merge_strict = true;
    core::resetCampaignPointStats();
    const int rc = guardedDispatch(o);
    printPointSummary("campaign merge");
    if (rc != 0)
        return rc;
    const std::uint64_t missing = core::campaignPointStats().missing;
    if (missing > 0) {
        std::cerr << "campaign: " << missing
                  << " point(s) still missing after "
                  << report.totalAttempts()
                  << " attempt(s) — partial result set\n";
        return 3;
    }
    return 0;
}

/** jscale supervise [retry flags] -- <command> [args] */
int
cmdSupervise(int argc, char **argv)
{
    core::SupervisorConfig scfg;
    int i = 2;
    for (; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--retries") {
            scfg.retries =
                static_cast<unsigned>(parseDigits(value(), arg));
        } else if (arg == "--backoff-ms") {
            scfg.backoff_ms = parseDigits(value(), arg);
        } else if (arg == "--timeout-s") {
            scfg.timeout_s = parseDigits(value(), arg);
        } else if (arg == "--log-dir") {
            scfg.log_dir = value();
        } else if (arg == "--") {
            ++i;
            break;
        } else {
            std::cerr << "unknown supervise flag '" << arg
                      << "' (command goes after --)\n";
            std::exit(2);
        }
    }
    if (i >= argc) {
        std::cerr << "supervise requires a command after --\n";
        std::exit(2);
    }
    const std::vector<std::string> child(argv + i, argv + argc);
    const auto argvFor = [&](std::uint32_t) { return child; };
    const core::SupervisorReport report =
        core::superviseWorkers(1, scfg, argvFor, std::cerr);
    report.print(std::cerr);
    const core::WorkerOutcome &w = report.workers.front();
    if (w.succeeded)
        return 0;
    const core::WorkerAttempt *last = w.last();
    if (last != nullptr &&
        last->failure == core::FailureClass::Deterministic)
        return last->exit_code; // pass the command's own verdict through
    return 3; // crash/timeout persisted through the retry budget
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2) {
        const std::string cmd = argv[1];
        if (cmd == "shard")
            return cmdShard(argc, argv);
        if (cmd == "merge")
            return cmdMerge(argc, argv);
        if (cmd == "campaign")
            return cmdCampaign(argc, argv);
        if (cmd == "supervise")
            return cmdSupervise(argc, argv);
    }
    return guardedDispatch(parse(argc, argv));
}
